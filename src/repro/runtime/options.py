"""Execution options for the DLB run-time executor."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..core.policy import DlbPolicy
from ..network.parameters import NetworkParameters

__all__ = ["RunOptions"]


@dataclass(frozen=True)
class RunOptions:
    """Knobs of one executor run.

    Attributes
    ----------
    policy:
        The DLB thresholds and costs (§3.3–§3.4).
    network:
        Transport parameters; defaults to the paper's measured values.
    group_size:
        ``K`` for the local strategies.  ``0`` means the paper's
        two-group setting, ``K = ceil(P / 2)``.
    include_staging:
        Model the initial scatter and final gather of the distributed
        arrays (and sequential-stage gather/scatter).  Off by default:
        staging cost is identical across strategies and the paper's
        claims concern the loop execution; see EXPERIMENTS.md.
    profile_window_reset:
        Reset the performance window at every synchronization (the
        paper's "since the last synchronization point" metric).  When
        False the whole history is used (the §3.2 alternative).
    on_execute:
        Optional callback ``(node, ranges)`` fired when a node completes
        iterations — used by the compiled-code integration to actually
        run kernels and check exactly-once execution.
    trace:
        Collect per-sync records in the stats (cheap; on by default).
    group_formation:
        How the local strategies form their fixed groups (§3.5):
        ``"block"`` (the paper's choice), ``"interleaved"``, or
        ``"random"`` (seeded by ``group_seed``).
    initial_partition:
        ``"equal"`` — the paper's equal-block compiler default; or
        ``"speed"`` — blocks proportional to nominal processor speeds
        (static heterogeneity handling; the extension the paper cites
        from Cierniak/Li/Zaki).
    sync_mode:
        ``"interrupt"`` — the paper's receiver-initiated scheme; or
        ``"periodic"`` — timer-based synchronization every
        ``sync_period`` seconds (the Dome/Siegell model of §2.2), in
        which the lowest-numbered active group member initiates the
        sync at the first iteration boundary past the deadline.
    sync_period:
        Period for ``sync_mode="periodic"``, in seconds.
    """

    policy: DlbPolicy = field(default_factory=DlbPolicy)
    network: NetworkParameters = field(default_factory=NetworkParameters)
    group_size: int = 0
    include_staging: bool = False
    profile_window_reset: bool = True
    on_execute: Optional[Callable[[int, list[tuple[int, int]]], None]] = None
    trace: bool = True
    group_formation: str = "block"
    group_seed: int = 0
    initial_partition: str = "equal"
    sync_mode: str = "interrupt"
    sync_period: float = 1.0

    def __post_init__(self) -> None:
        if self.group_formation not in ("block", "interleaved", "random"):
            raise ValueError(f"bad group_formation {self.group_formation!r}")
        if self.initial_partition not in ("equal", "speed"):
            raise ValueError(
                f"bad initial_partition {self.initial_partition!r}")
        if self.sync_mode not in ("interrupt", "periodic"):
            raise ValueError(f"bad sync_mode {self.sync_mode!r}")
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")

    def effective_group_size(self, n_processors: int,
                             strategy_group_size: Optional[int]) -> int:
        """Resolve ``K``: strategy override > option > paper default."""
        if strategy_group_size:
            return min(strategy_group_size, n_processors)
        if self.group_size:
            return min(self.group_size, n_processors)
        return max(1, (n_processors + 1) // 2)

    def but(self, **changes) -> "RunOptions":
        return replace(self, **changes)
