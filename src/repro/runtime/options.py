"""Execution options for the DLB run-time executor."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..core.policy import DlbPolicy
from ..network.parameters import NetworkParameters
from ..network.topology import Topology, parse_topology_spec

__all__ = ["RunOptions", "FaultToleranceConfig"]


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Timeout/retry/detection knobs of the hardened protocol.

    With ``enabled=False`` (the default) every receive in the DLB
    protocol blocks forever, exactly as in the original reproduction —
    the fault-free experiments are bit-for-bit unchanged.  With
    ``enabled=True`` (implied whenever a fault plan is supplied) every
    protocol wait carries a timeout; on expiry the waiter re-requests
    the missing message and backs off exponentially, and after
    ``max_retries`` unanswered attempts it declares the peer dead
    (fencing it if it is in fact alive — see docs/FAULT_MODEL.md).

    Attributes
    ----------
    enabled:
        Turn the hardened protocol on.
    request_timeout:
        Base wait, in seconds, before the first re-request.  Should
        comfortably exceed one iteration time plus a network round trip
        so loaded-but-healthy peers are not falsely suspected.
    backoff:
        Multiplier applied to the timeout after each retry (bounded
        exponential backoff).
    max_retries:
        Re-requests before the peer is declared dead.  The total
        patience is ``request_timeout * (backoff**(max_retries+1) - 1)
        / (backoff - 1)``.
    liveness_timeout:
        Central-balancer patience with a *completely silent* group
        before it probes the members (a pull-based heartbeat: the probe
        doubles as a synchronization interrupt for live members).  Must
        be small enough that ``liveness_timeout * (max_retries + 1)``
        — the master's time-to-declare — fits inside a slave's total
        instruction-wait patience, or slaves waiting on a plan that
        includes the dead member give up before the master does.
    """

    enabled: bool = False
    request_timeout: float = 0.2
    backoff: float = 2.0
    max_retries: int = 5
    liveness_timeout: float = 0.5

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if self.liveness_timeout <= 0:
            raise ValueError("liveness_timeout must be positive")

    def timeout_for(self, attempt: int) -> float:
        """Wait before re-request number ``attempt`` (0-based)."""
        return self.request_timeout * (self.backoff ** attempt)


@dataclass(frozen=True)
class RunOptions:
    """Knobs of one executor run.

    Attributes
    ----------
    policy:
        The DLB thresholds and costs (§3.3–§3.4).
    network:
        Transport parameters; defaults to the paper's measured values.
    topology:
        The network graph: ``None`` (the paper's shared bus — the seed
        behavior, bit-identical), a spec string (``"bus"``, ``"ring"``,
        ``"mesh"``, ``"torus"``, ``"file:<adjacency.json>"``), or a
        concrete :class:`~repro.network.topology.Topology`.  Resolved
        against the processor count when the run starts.
    group_size:
        ``K`` for the local strategies.  ``0`` means the paper's
        two-group setting, ``K = ceil(P / 2)``.
    include_staging:
        Model the initial scatter and final gather of the distributed
        arrays (and sequential-stage gather/scatter).  Off by default:
        staging cost is identical across strategies and the paper's
        claims concern the loop execution; see EXPERIMENTS.md.
    profile_window_reset:
        Reset the performance window at every synchronization (the
        paper's "since the last synchronization point" metric).  When
        False the whole history is used (the §3.2 alternative).
    on_execute:
        Optional callback ``(node, ranges)`` fired when a node completes
        iterations — used by the compiled-code integration to actually
        run kernels and check exactly-once execution.
    trace:
        Collect per-sync records in the stats (cheap; on by default).
    recorder:
        An :class:`~repro.obs.trace.TraceRecorder` to stream structured
        span/instant events into (``None``, the default, records
        nothing — instrumentation sites hold the shared
        :data:`~repro.obs.trace.NULL_RECORDER`, whose cost is gated in
        ``benchmarks/test_bench_obs.py``).  The backend binds the
        recorder's clock to its own time domain: virtual seconds on the
        simulator, zero-based ``perf_counter`` elsewhere.  See
        docs/OBSERVABILITY.md.
    group_formation:
        How the local strategies form their fixed groups (§3.5):
        ``"block"`` (the paper's choice), ``"interleaved"``, or
        ``"random"`` (seeded by ``group_seed``).
    initial_partition:
        ``"equal"`` — the paper's equal-block compiler default; or
        ``"speed"`` — blocks proportional to nominal processor speeds
        (static heterogeneity handling; the extension the paper cites
        from Cierniak/Li/Zaki).
    sync_mode:
        ``"interrupt"`` — the paper's receiver-initiated scheme; or
        ``"periodic"`` — timer-based synchronization every
        ``sync_period`` seconds (the Dome/Siegell model of §2.2), in
        which the lowest-numbered active group member initiates the
        sync at the first iteration boundary past the deadline.
    sync_period:
        Period for ``sync_mode="periodic"``, in seconds.
    fault_tolerance:
        Timeout/retry/fencing knobs of the hardened protocol (see
        :class:`FaultToleranceConfig` and docs/FAULT_MODEL.md).  Off by
        default; automatically enabled when the executor is given a
        fault plan.
    """

    policy: DlbPolicy = field(default_factory=DlbPolicy)
    network: NetworkParameters = field(default_factory=NetworkParameters)
    topology: "str | Topology | None" = None
    group_size: int = 0
    include_staging: bool = False
    profile_window_reset: bool = True
    on_execute: Optional[Callable[[int, list[tuple[int, int]]], None]] = None
    trace: bool = True
    recorder: Optional[object] = None
    group_formation: str = "block"
    group_seed: int = 0
    initial_partition: str = "equal"
    sync_mode: str = "interrupt"
    sync_period: float = 1.0
    fault_tolerance: FaultToleranceConfig = field(
        default_factory=FaultToleranceConfig)

    def __post_init__(self) -> None:
        if isinstance(self.topology, str):
            parse_topology_spec(self.topology)  # fail fast on bad specs
        if self.group_formation not in ("block", "interleaved", "random"):
            raise ValueError(f"bad group_formation {self.group_formation!r}")
        if self.initial_partition not in ("equal", "speed"):
            raise ValueError(
                f"bad initial_partition {self.initial_partition!r}")
        if self.sync_mode not in ("interrupt", "periodic"):
            raise ValueError(f"bad sync_mode {self.sync_mode!r}")
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")

    def effective_group_size(self, n_processors: int,
                             strategy_group_size: Optional[int]) -> int:
        """Resolve ``K``: strategy override > option > paper default."""
        if strategy_group_size:
            return min(strategy_group_size, n_processors)
        if self.group_size:
            return min(self.group_size, n_processors)
        return max(1, (n_processors + 1) // 2)

    def but(self, **changes) -> "RunOptions":
        return replace(self, **changes)
