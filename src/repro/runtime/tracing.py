"""Execution tracing: per-node activity timelines and utilization.

The statistics of :mod:`repro.runtime.stats` summarize a run; this
module reconstructs *what each processor was doing when* from the sync
records and executed ranges, and renders an ASCII Gantt chart — the
quickest way to see a retirement cascade, an LCDLB balancer queue, or
periodic-sync idling.

Tracing is derived (no extra instrumentation cost): compute intervals
are reconstructed from the workstation time math and the per-node
executed counts, sync points from the trace records.

Usage — the ``stations`` argument is the same cluster the run used
(``ClusterSpec.build`` is seeded, so rebuilding reproduces the load
streams the simulation saw)::

    from repro import ClusterSpec, run_loop
    from repro.apps import MxmConfig, mxm_loop
    from repro.runtime import (render_gantt, render_sync_timeline,
                               utilization_report)

    loop = mxm_loop(MxmConfig(r=240, c=200, r2=200))
    cluster = ClusterSpec.homogeneous(4, max_load=3, seed=7)
    stations = cluster.build()

    stats = run_loop(loop, cluster, "GDDLB")
    print(utilization_report(stats, loop, stations).summary())
    print(render_gantt(stats, loop, stations))     # '=' compute, '|' sync
    print(render_sync_timeline(stats, limit=6))    # one line per sync

On a faulted run (see :mod:`repro.faults`) a crashed node's lane simply
ends at its last executed iteration — the chart is often the fastest
way to see who picked up the orphaned work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.workload import LoopSpec
from ..machine.workstation import Workstation
from .stats import LoopRunStats

__all__ = ["UtilizationReport", "utilization_report", "render_gantt",
           "render_sync_timeline"]


@dataclass
class UtilizationReport:
    """Aggregate utilization of one loop run.

    ``busy_fraction`` is work-weighted: the fraction of each node's
    wall time it spent executing iterations, given its (load-modulated)
    effective speed; the remainder is synchronization, waiting and
    post-retirement idleness.
    """

    duration: float
    per_node_busy: dict[int, float]
    per_node_finish: dict[int, float]
    executed: dict[int, int]

    @property
    def busy_fraction(self) -> float:
        if not self.per_node_busy or self.duration <= 0:
            return 0.0
        total = sum(min(b / self.duration, 1.0)
                    for b in self.per_node_busy.values())
        return total / len(self.per_node_busy)

    def summary(self) -> str:
        lines = [f"utilization over {self.duration:.3f}s "
                 f"(mean busy fraction {self.busy_fraction:.2f})"]
        for node in sorted(self.per_node_busy):
            busy = self.per_node_busy[node]
            frac = min(busy / self.duration, 1.0) if self.duration else 0.0
            lines.append(
                f"  node {node}: {self.executed.get(node, 0):5d} iters, "
                f"busy {busy:7.3f}s ({frac:5.1%}), finished at "
                f"{self.per_node_finish.get(node, 0.0):7.3f}s")
        return "\n".join(lines)


def _node_busy_seconds(stats: LoopRunStats, loop: LoopSpec,
                       stations: list[Workstation], node: int) -> float:
    """Wall seconds node spent computing its executed iterations.

    Approximation: the executed work divided by the node's *average*
    effective speed over its active window — exact for constant load,
    tight otherwise.
    """
    table = loop.work_table()
    work = sum(table.range_work(s, e)
               for s, e in stats.executed_by_node.get(node, []))
    if work <= 0:
        return 0.0
    ws = stations[node]
    end = stats.node_finish_times.get(node) or stats.end_time
    window = max(end - stats.start_time, 1e-12)
    speed = ws.average_effective_speed(stats.start_time, end)
    return min(work / max(speed, 1e-12), window)


def utilization_report(stats: LoopRunStats, loop: LoopSpec,
                       stations: list[Workstation]) -> UtilizationReport:
    """Reconstruct per-node utilization from run statistics."""
    busy = {i: _node_busy_seconds(stats, loop, stations, i)
            for i in range(stats.n_processors)}
    return UtilizationReport(
        duration=stats.duration,
        per_node_busy=busy,
        per_node_finish={i: (stats.node_finish_times.get(i) or
                             stats.end_time) - stats.start_time
                         for i in range(stats.n_processors)},
        executed={i: stats.executed_count(i)
                  for i in range(stats.n_processors)})


def render_gantt(stats: LoopRunStats, loop: LoopSpec,
                 stations: list[Workstation], width: int = 60) -> str:
    """ASCII Gantt chart: one row per node, '#' busy, '.' idle/overhead,
    '|' sync points, ' ' after the node finished."""
    if stats.duration <= 0:
        return "(empty run)"
    report = utilization_report(stats, loop, stations)
    scale = stats.duration / width
    sync_cols = sorted({min(int((s.time - stats.start_time) / scale),
                            width - 1) for s in stats.syncs})
    lines = [f"== {stats.loop_name} [{stats.strategy}] "
             f"{stats.duration:.3f}s, {stats.n_syncs} syncs =="]
    for node in range(stats.n_processors):
        finish = report.per_node_finish[node]
        finish_col = min(int(finish / scale), width)
        busy_cols = int(min(report.per_node_busy[node] / scale, finish_col))
        row = ["#"] * busy_cols + ["."] * (finish_col - busy_cols)
        row += [" "] * (width - len(row))
        for col in sync_cols:
            if col < finish_col:
                row[col] = "|"
        lines.append(f"P{node:<2d} |{''.join(row)}|")
    axis = f"    0{'':{width - 8}}{stats.duration:7.2f}s"
    lines.append(axis)
    return "\n".join(lines)


def render_sync_timeline(stats: LoopRunStats,
                         limit: Optional[int] = None) -> str:
    """One line per synchronization point, in time order."""
    lines = [f"== sync timeline: {stats.loop_name} [{stats.strategy}] =="]
    records = stats.syncs[:limit] if limit else stats.syncs
    for s in records:
        retired = f" retired={list(s.retired)}" if s.retired else ""
        lines.append(
            f"  t={s.time:9.3f}s g{s.group} e{s.epoch:<3d} "
            f"{s.reason:<22s} moved={s.moved_work:8.3f} "
            f"xfers={s.n_transfers}{retired}")
    if limit and len(stats.syncs) > limit:
        lines.append(f"  ... {len(stats.syncs) - limit} more")
    return "\n".join(lines)
