"""Random-victim work stealing (the Phish model of paper §2.2).

A contrast baseline to the paper's group-synchronized strategies: there
are no synchronization points at all.  A processor that runs out of
work (the *thief*) picks a victim at random and requests work; the
victim — at its next iteration boundary — ships half of its remaining
iterations, or an empty reply if it has nothing to spare, in which case
the thief tries another victim.  A thief whose round of requests comes
back empty retires and notifies the master; when everyone has retired
the master broadcasts termination.

While waiting for a reply a thief keeps serving incoming steal requests
(with empty replies — it is broke by definition), which is what makes
mutual stealing deadlock-free.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..message.messages import ControlMsg, Message, Tag, WorkMsg
from ..simulation import Event
from .node import NodeRuntime
from .session import LoopSession
from .stats import SyncRecord

__all__ = ["StealingNodeRuntime"]

STEAL_REQUEST = "steal-request"
RETIRED_NOTICE = "retired"
ALL_DONE = "all-done"


class StealingNodeRuntime(NodeRuntime):
    """Node protocol for the work-stealing strategy (code ``WS``)."""

    def __init__(self, session: LoopSession, node_id: int,
                 assignment) -> None:
        super().__init__(session, node_id, assignment)
        self.periodic = False  # stealing has no synchronization points
        self._rng = np.random.default_rng(
            session.options.group_seed * 65_537 + node_id)
        self._steal_seq = 0

    # -- interrupt wiring --------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        """Steal requests break out of compute at the next boundary."""
        if (msg.tag is Tag.CONTROL
                and getattr(msg, "kind", "") == STEAL_REQUEST
                and self.computing and self.proc is not None
                and self.proc.is_alive):
            self.computing = False
            self.proc.interrupt("steal-request")

    # -- serving -----------------------------------------------------------
    def _serve_request(self, msg: ControlMsg
                       ) -> Generator[Event, None, None]:
        """Reply to one steal request: half the remaining iterations."""
        session = self.session
        count = self.assignment.count
        give = count // 2
        if give > 0:
            ranges = self.assignment.take_tail_count(give)
            data = give * session.loop.dc_bytes
        else:
            ranges, data = [], 0
        yield from session.vm.send(WorkMsg(
            src=self.me, dst=msg.src, epoch=0,
            ranges=tuple(ranges), count=give, data_bytes=data))
        if give and session.options.trace:
            self._steal_seq += 1
            session.stats.record_sync(SyncRecord(
                time=session.env.now, group=0, epoch=self._steal_seq,
                reason="steal", moved_work=float(
                    sum(session.table.range_work(s, e) for s, e in ranges)),
                n_transfers=1, retired=()))

    def _serve_pending(self) -> Generator[Event, None, None]:
        while True:
            msg = self.session.vm.poll(
                self.me, Tag.CONTROL,
                match=lambda m: getattr(m, "kind", "") == STEAL_REQUEST)
            if msg is None:
                return
            yield from self._serve_request(msg)

    # -- stealing -----------------------------------------------------------
    def _steal_round(self) -> Generator[Event, None, bool]:
        """One round of random-victim requests; True if work arrived."""
        session = self.session
        vm = session.vm
        victims = [v for v in range(session.n) if v != self.me]
        self._rng.shuffle(victims)
        for victim in victims:
            yield from vm.send(ControlMsg(src=self.me, dst=victim,
                                          kind=STEAL_REQUEST))
            while True:
                msg = yield vm.recv(
                    self.me,
                    match=lambda m: (
                        (m.tag is Tag.WORK and m.src == victim)
                        or (m.tag is Tag.CONTROL and getattr(m, "kind", "")
                            in (STEAL_REQUEST, ALL_DONE))))
                if msg.tag is Tag.CONTROL:
                    if msg.kind == ALL_DONE:
                        # Termination raced our request; give up.
                        self.more_work = False
                        return False
                    yield from self._serve_request(msg)
                    continue
                break
            if msg.count:
                self.assignment.add(msg.ranges)
                return True
        return False

    def _await_termination(self) -> Generator[Event, None, None]:
        """Retired: keep answering steal requests until ALL_DONE."""
        session = self.session
        vm = session.vm
        yield from vm.send(ControlMsg(src=self.me, dst=0,
                                      kind=RETIRED_NOTICE))
        if self.me == 0:
            yield from self._master_collect()
            return
        while True:
            msg = yield vm.recv(
                self.me, Tag.CONTROL,
                match=lambda m: getattr(m, "kind", "") in (STEAL_REQUEST,
                                                           ALL_DONE))
            if msg.kind == ALL_DONE:
                return
            yield from self._serve_request(msg)

    def _master_collect(self) -> Generator[Event, None, None]:
        """The master gathers retirement notices, then ends the run."""
        session = self.session
        vm = session.vm
        retired = {0}
        while len(retired) < session.n:
            msg = yield vm.recv(
                self.me, Tag.CONTROL,
                match=lambda m: getattr(m, "kind", "") in (STEAL_REQUEST,
                                                           RETIRED_NOTICE))
            if msg.kind == RETIRED_NOTICE:
                retired.add(msg.src)
            else:
                yield from self._serve_request(msg)
        yield from vm.multicast(
            ControlMsg(src=0, dst=d, kind=ALL_DONE)
            for d in range(1, session.n))

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, None, None]:
        session = self.session
        env = session.env
        while self.more_work:
            if not self.assignment.empty:
                status = yield from self._compute()
                if status == "interrupted":
                    yield from self._serve_pending()
                    continue
            # Out of work: one round of stealing.
            got = yield from self._steal_round()
            if not self.more_work:
                break
            if not got:
                yield from self._await_termination()
                break
        self.finish_time = env.now
