"""The SPMD slave protocol: compute, interrupt, profile, redistribute.

This is the run-time counterpart of the paper's Figure 3 slave loop::

    while (dlb.more_work) {
        for (i = dlb.start; i < dlb.end && dlb.more_work; i++) {
            ... loop body ...
            if (DLB_slave_sync(&dlb) && dlb.interrupt)
                DLB_profile_send_move_work(&dlb);
        }
        if (dlb.more_work) {
            DLB_send_interrupt(&dlb);
            DLB_profile_send_move_work(&dlb);
        }
    }

Each node is a simulated process.  It computes its assigned iterations
(with external load slowing it down), polls for interrupts at iteration
boundaries, initiates a synchronization when it runs out of work
(receiver-initiated, §3.1), exchanges profiles, and moves work
according to the redistribution plan — through the central balancer in
the centralized schemes, or via replicated deterministic planning in
the distributed ones.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Optional

from ..core.redistribution import SyncProfile, plan_redistribution
from ..message.messages import (
    InstructionMsg,
    InterruptMsg,
    Message,
    ProfileMsg,
    Tag,
    TransferOrder,
    WorkMsg,
)
from ..simulation import Event, Interrupt, Process
from .assignment import Assignment
from .session import LoopSession

__all__ = ["NodeRuntime"]

_EPS = 1e-15


class NodeRuntime:
    """Per-processor run-time state and protocol implementation."""

    def __init__(self, session: LoopSession, node_id: int,
                 assignment: Assignment) -> None:
        self.session = session
        self.me = node_id
        self.ws = session.stations[node_id]
        self.assignment = assignment
        self.epoch = 0
        self.gid = session.group_of[node_id]
        self.active: set[int] = set(session.groups[self.gid])
        self.more_work = True
        self.computing = False
        self.finish_time: Optional[float] = None
        # Performance window (§3.2): work completed and busy seconds
        # since the last synchronization point.
        self.win_work = 0.0
        self.win_busy = 0.0
        self.rate = self.ws.speed  # optimistic prior before measurements
        self.proc: Optional[Process] = None
        # Periodic synchronization (Dome/Siegell model, §2.2 ablation):
        # the lowest-numbered active group member is the clock.
        self.periodic = session.options.sync_mode == "periodic"
        self.next_deadline = session.env.now + session.options.sync_period

        session.nodes[node_id] = self
        session.vm.inbox[node_id].notify = self._on_message

    # -- interrupt wiring ---------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        """Mailbox hook: break out of compute when a sync interrupt lands."""
        if (msg.tag is Tag.INTERRUPT and msg.epoch == self.epoch
                and self.computing and self.proc is not None
                and self.proc.is_alive):
            self.computing = False
            self.proc.interrupt("sync")

    def steal(self, duration: float) -> bool:
        """Pause this node's computation for ``duration`` seconds.

        Called by a co-located central balancer to model the context
        switch between the balancer and the computation slave (§6.2's
        LCDLB overhead).  Returns False when the node is not computing.
        """
        if self.computing and self.proc is not None and self.proc.is_alive:
            self.computing = False
            self.proc.interrupt(("steal", duration))
            return True
        return False

    def _pending_interrupt(self) -> Optional[Message]:
        return self.session.vm.inbox[self.me].peek(
            lambda m: m.tag is Tag.INTERRUPT and m.epoch == self.epoch)

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, None, None]:
        """The node's top-level simulated process."""
        session = self.session
        env = session.env
        if not session.strategy.is_dlb:
            # Static baseline: compute the initial block, then stop.
            yield from self._compute()
            self.finish_time = env.now
            return
        while self.more_work:
            status = yield from self._compute()
            others = sorted(self.active - {self.me})
            if status == "finished" and not others \
                    and not session.centralized:
                # Lone distributed node: nothing to exchange with.
                self.more_work = False
                break
            if self.periodic:
                proceed = yield from self._periodic_trigger(status, others)
                if not proceed:
                    continue
            elif status == "finished":
                if others and self._pending_interrupt() is None:
                    # Receiver-initiated sync: interrupt the group (§3.1).
                    yield from session.vm.multicast(
                        InterruptMsg(src=self.me, dst=o, epoch=self.epoch,
                                     group=self.gid)
                        for o in others)
            outcome = yield from self._synchronize()
            self.next_deadline = env.now + session.options.sync_period
            if outcome in ("done", "retired"):
                break
        self.finish_time = env.now

    def _is_clock(self) -> bool:
        """The periodic-mode initiator: lowest-numbered active member."""
        return self.me == min(self.active)

    def _periodic_trigger(self, status: str, others: list[int]):
        """Timer-based synchronization entry (sync_mode="periodic").

        Returns True when the node should proceed into the sync, False
        when it should resume computing (spurious wakeup).
        """
        session = self.session
        env = session.env
        if status == "deadline" or (status == "finished"
                                    and self._is_clock()):
            # The clock waits out the rest of the period (it may have
            # finished early), then interrupts the group.
            if env.now < self.next_deadline \
                    and self._pending_interrupt() is None:
                yield env.timeout(self.next_deadline - env.now)
            if others and self._pending_interrupt() is None:
                yield from session.vm.multicast(
                    InterruptMsg(src=self.me, dst=o, epoch=self.epoch,
                                 group=self.gid)
                    for o in others)
        elif status == "finished":
            # A non-clock finisher idles until the next periodic sync —
            # precisely the utilization loss the paper's interrupt-based
            # scheme avoids.
            if self._pending_interrupt() is None:
                yield session.vm.recv(self.me, Tag.INTERRUPT,
                                      epoch=self.epoch)
        return True

    # -- computing ------------------------------------------------------------
    def _compute(self) -> Generator[Event, None, str]:
        """Execute assigned iterations until done or interrupted.

        Returns ``"finished"`` when the whole assignment completed, or
        ``"interrupted"`` after stopping at the next iteration boundary
        following a synchronization interrupt.
        """
        session = self.session
        env = session.env
        table = session.table
        if self.assignment.empty:
            return "finished"
        total = self.assignment.work(table)
        consumed = 0.0
        clock_duty = (self.periodic and session.strategy.is_dlb
                      and self._is_clock())
        while True:
            if self._pending_interrupt() is not None:
                # The flag was raised while we were not interruptible
                # (e.g. during a steal pause): honor it at this boundary.
                return (yield from self._stop_at_boundary(consumed))
            if clock_duty and env.now >= self.next_deadline:
                result = yield from self._stop_at_boundary(consumed)
                return "deadline" if result == "interrupted" else result
            sub_start = env.now
            remaining = max(total - consumed, 0.0)
            finish_at = self.ws.time_to_complete(env.now, remaining)
            deadline_first = clock_duty and self.next_deadline < finish_at
            target = self.next_deadline if deadline_first else finish_at
            self.computing = True
            try:
                yield env.timeout(max(target - env.now, 0.0))
            except Interrupt as it:
                # ``computing`` was cleared by whoever interrupted us.
                self.win_busy += env.now - sub_start
                consumed += self.ws.capacity(sub_start, env.now)
                cause = it.cause
                if isinstance(cause, tuple) and cause[0] == "steal":
                    yield env.timeout(cause[1])
                    continue
                return (yield from self._stop_at_boundary(consumed))
            self.computing = False
            self.win_busy += env.now - sub_start
            if deadline_first:
                consumed += self.ws.capacity(sub_start, env.now)
                result = yield from self._stop_at_boundary(consumed)
                return "deadline" if result == "interrupted" else result
            self.win_work += total
            executed = self.assignment.take_head(self.assignment.count)
            session.record_executed(self.me, executed)
            return "finished"

    def _stop_at_boundary(self, consumed: float
                          ) -> Generator[Event, None, str]:
        """Finish the iteration in flight, book completed work, stop."""
        session = self.session
        env = session.env
        table = session.table
        k = self.assignment.head_count_for_work(table, consumed, round_up=True)
        boundary_work = self.assignment.head_work(table, k)
        extra = boundary_work - consumed
        if extra > _EPS:
            t_end = self.ws.time_to_complete(env.now, extra)
            self.win_busy += t_end - env.now
            yield env.timeout(t_end - env.now)
        if k > 0:
            self.win_work += boundary_work
            executed = self.assignment.take_head(k)
            session.record_executed(self.me, executed)
        return "interrupted"

    # -- synchronizing ------------------------------------------------------
    def _measured_rate(self) -> float:
        """The §3.2 performance metric over the current window."""
        if self.win_busy > 0 and self.win_work > 0:
            self.rate = self.win_work / self.win_busy
        return self.rate

    def _reset_window(self) -> None:
        if self.session.options.profile_window_reset:
            self.win_work = 0.0
            self.win_busy = 0.0

    def _synchronize(self) -> Generator[Event, None, str]:
        """One synchronization point: profile, plan, move work."""
        session = self.session
        vm = session.vm
        env = session.env
        epoch = self.epoch
        # Consume this epoch's interrupt(s) and any stale ones.
        vm.inbox[self.me].drain(
            lambda m: m.tag is Tag.INTERRUPT and m.epoch <= epoch)

        remaining_work = self.assignment.work(session.table)
        profile = ProfileMsg(
            src=self.me, dst=self.me, epoch=epoch, group=self.gid,
            remaining_work=remaining_work,
            remaining_count=self.assignment.count,
            rate=self._measured_rate())

        if session.centralized:
            yield from vm.send(replace(profile, dst=session.lb_host))
            instr = yield vm.recv(self.me, Tag.INSTRUCTION, epoch=epoch)
            assert isinstance(instr, InstructionMsg)
            if instr.select_scheme:
                session.apply_selection(instr.select_scheme,
                                        instr.select_group_size)
                self.gid = session.group_of[self.me]
            if instr.done:
                self.more_work = False
                return "done"
            yield from self._apply(instr.outgoing, instr.incoming,
                                   instr.active, instr.retire, epoch)
            if instr.retire:
                self.more_work = False
                return "retired"
        else:
            others = sorted(self.active - {self.me})
            yield from vm.multicast(replace(profile, dst=o) for o in others)
            profiles = {self.me: SyncProfile(
                node=self.me, remaining_work=remaining_work,
                remaining_count=self.assignment.count, rate=self.rate)}
            while len(profiles) < len(others) + 1:
                msg = yield vm.recv(self.me, Tag.PROFILE, epoch=epoch)
                profiles[msg.src] = SyncProfile(
                    node=msg.src, remaining_work=msg.remaining_work,
                    remaining_count=msg.remaining_count, rate=msg.rate)
            # Replicated new-distribution calculation (delta), slowed by
            # this node's current external load.
            t_end = self.ws.time_to_complete(
                env.now, session.policy.delta_seconds)
            yield env.timeout(t_end - env.now)
            plan = plan_redistribution(
                sorted(profiles.values(), key=lambda p: p.node),
                session.policy, session.mean_iteration_time,
                session.movement_cost_fn)
            session.record_plan(self.gid, epoch, plan)
            if plan.done:
                self.more_work = False
                return "done"
            retire_me = self.me in plan.retire
            yield from self._apply(plan.outgoing(self.me),
                                   len(plan.incoming(self.me)),
                                   plan.active, retire_me, epoch)
            if retire_me:
                self.more_work = False
                return "retired"
        self.epoch += 1
        self._reset_window()
        return "continue"

    def _apply(self, outgoing: tuple[TransferOrder, ...], incoming: int,
               new_active: tuple[int, ...], retire: bool, epoch: int
               ) -> Generator[Event, None, None]:
        """Execute a plan's work movement from this node's viewpoint."""
        session = self.session
        vm = session.vm
        table = session.table
        orders = list(outgoing)
        for idx, order in enumerate(orders):
            if retire and idx == len(orders) - 1:
                # A retiring node ships everything that is left.
                ranges = self.assignment.take_all()
                count = sum(e - s for s, e in ranges)
            else:
                ranges, count = self.assignment.take_tail_work(
                    table, order.work, keep_one=not retire)
            yield from vm.send(WorkMsg(
                src=self.me, dst=order.dst, epoch=epoch,
                ranges=tuple(ranges), count=count,
                data_bytes=count * session.loop.dc_bytes))
        for _ in range(incoming):
            msg = yield vm.recv(self.me, Tag.WORK, epoch=epoch)
            assert isinstance(msg, WorkMsg)
            if msg.ranges:
                self.assignment.add(msg.ranges)
        self.active = set(new_active) & set(session.groups[self.gid])
