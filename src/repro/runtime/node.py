"""The discrete-event adapter for the SPMD slave protocol.

This is the run-time counterpart of the paper's Figure 3 slave loop::

    while (dlb.more_work) {
        for (i = dlb.start; i < dlb.end && dlb.more_work; i++) {
            ... loop body ...
            if (DLB_slave_sync(&dlb) && dlb.interrupt)
                DLB_profile_send_move_work(&dlb);
        }
        if (dlb.more_work) {
            DLB_send_interrupt(&dlb);
            DLB_profile_send_move_work(&dlb);
        }
    }

The *protocol* — epochs, profiles, redistribution, the fault-tolerance
transitions — lives in the backend-agnostic
:class:`~repro.protocol.worker.WorkerProtocol`; ``NodeRuntime`` is the
simulation backend's adapter around it.  It owns everything the
discrete-event kernel cares about: the generator process, simulated
compute slices through the workstation's load model, mailbox wiring,
timed receives, and the mid-compute steals a co-located balancer or
fault injector performs.  Protocol state (epoch, active set,
assignment, performance window, resend caches) is read and written
*only* through the protocol object, so every backend shares one
implementation of the paper's §3 semantics.

Fault tolerance (docs/FAULT_MODEL.md)
-------------------------------------
When ``options.fault_tolerance.enabled`` the same protocol is hardened:
every blocking receive carries a timeout; on expiry the waiter sends a
``resend-profile`` / ``resend-work`` control request and backs off
exponentially; after ``max_retries`` unanswered requests the peer is
*declared dead* to the session's :class:`~repro.faults.FaultController`
(which fences it, reclaiming its unfinished iteration ranges into the
orphan pool).  Syncing survivors claim pooled ranges before profiling
so reclaimed work re-enters the normal redistribution flow.  A
``resend-profile`` request addressed to a node that has not reached the
requested epoch doubles as a synchronization interrupt — which is also
how a *dropped* interrupt heals.  With fault tolerance disabled (the
default) none of these paths allocate a single extra event.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Optional

from ..core.redistribution import SyncProfile
from ..message.messages import (
    ControlMsg,
    InstructionMsg,
    InterruptMsg,
    Message,
    Tag,
    TransferOrder,
    stale_predicate,
)
from ..protocol.worker import WorkerProtocol
from ..simulation import (Event, Interrupt, Process,
                          RetryExhaustedError, SlotFilter)
from .assignment import Assignment
from .session import LoopSession

__all__ = ["NodeRuntime"]

_EPS = 1e-15


class NodeRuntime:
    """Per-processor simulation adapter around the worker protocol."""

    def __init__(self, session: LoopSession, node_id: int,
                 assignment: Assignment) -> None:
        self.session = session
        self.me = node_id
        self.ws = session.stations[node_id]
        self.gid = session.group_of[node_id]
        self.protocol = WorkerProtocol(
            node_id, session.groups[self.gid],
            group=self.gid,
            centralized=session.centralized,
            lb_host=session.lb_host,
            policy=session.policy,
            table=session.table,
            mean_iteration_time=session.mean_iteration_time,
            dc_bytes=session.loop.dc_bytes,
            movement_cost_fn=session.movement_cost_fn,
            planner=session.planner,
            ft=session.ft,
            profile_window_reset=session.options.profile_window_reset,
            initial_rate=self.ws.speed,
            assignment=assignment,
            is_dlb=session.strategy.is_dlb)
        self.computing = False
        self.finish_time: Optional[float] = None
        self.proc: Optional[Process] = None
        # Trace sink (the shared no-op unless a recorder was supplied).
        # All recording below is pure observation inside existing
        # callbacks — it never schedules a DES event, so the seed
        # oracles hold with recording enabled.
        self.rec = session.recorder
        self.track = f"node{node_id}"
        # Periodic synchronization (Dome/Siegell model, §2.2 ablation):
        # the lowest-numbered active group member is the clock.
        self.periodic = session.options.sync_mode == "periodic"
        self.next_deadline = session.env.now + session.options.sync_period

        session.nodes[node_id] = self
        session.vm.inbox[node_id].notify = self._on_message

    # -- protocol-state views ------------------------------------------------
    # The protocol object is the single owner of epoch, membership,
    # window, caches, and the assignment; these views keep the executor,
    # the fault controller, and the tests on one source of truth.
    @property
    def ft_enabled(self) -> bool:
        return self.session.ft.enabled

    @property
    def epoch(self) -> int:
        return self.protocol.epoch

    @property
    def active(self) -> set[int]:
        return self.protocol.active

    @active.setter
    def active(self, value: set[int]) -> None:
        self.protocol.active = value

    @property
    def assignment(self) -> Assignment:
        return self.protocol.assignment

    @property
    def more_work(self) -> bool:
        return self.protocol.more_work

    @more_work.setter
    def more_work(self, value: bool) -> None:
        self.protocol.more_work = value

    @property
    def rate(self) -> float:
        return self.protocol.rate

    @property
    def win_work(self) -> float:
        return self.protocol.win_work

    @property
    def win_busy(self) -> float:
        return self.protocol.win_busy

    # -- interrupt wiring ---------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        """Mailbox hook: interrupts, plus resend service under faults."""
        if (msg.tag is Tag.INTERRUPT and msg.epoch == self.epoch
                and self.computing and self.proc is not None
                and self.proc.is_alive):
            self.computing = False
            self.proc.interrupt("sync")
        elif self.ft_enabled and msg.tag is Tag.CONTROL \
                and isinstance(msg, ControlMsg):
            self._serve_control(msg)

    def _serve_control(self, msg: ControlMsg) -> None:
        """Answer a peer's resend request (runs inside the delivery hook,
        so actual sends are detached helper processes)."""
        env = self.session.env
        if msg.kind == "resend-profile":
            if (msg.epoch == self.epoch and self.computing
                    and self.proc is not None and self.proc.is_alive):
                # We have not synchronized this epoch yet: the request
                # doubles as a (possibly lost) synchronization interrupt.
                self.computing = False
                self.proc.interrupt("sync")
            else:
                # The cache answers with the exact epoch, or our latest
                # profile as liveness evidence so the prober does not
                # fence us while we are stuck in an older epoch.
                cached = self.protocol.profile_reply(msg.epoch, msg.src)
                if cached is not None:
                    env.process(self._oneshot_send(cached),
                                name=f"resend-profile{self.me}->{msg.src}")
        elif msg.kind == "resend-work":
            cached = self.protocol.work_reply(msg.src, msg.epoch)
            if cached is not None:
                env.process(self._oneshot_send(cached),
                            name=f"resend-work{self.me}->{msg.src}")
            else:
                # Our plan never ordered a transfer to this peer (plan
                # divergence under partial failure): tell it to stop
                # waiting rather than let it declare us dead.
                reply = self.protocol.stamp(ControlMsg, dst=msg.src,
                                            epoch=msg.epoch, kind="no-work")
                env.process(self._oneshot_send(reply),
                            name=f"no-work{self.me}->{msg.src}")

    def _oneshot_send(self, msg: Message) -> Generator[Event, None, None]:
        yield from self.session.vm.send(msg)

    def steal(self, duration: float) -> bool:
        """Pause this node's computation for ``duration`` seconds.

        Called by a co-located central balancer to model the context
        switch between the balancer and the computation slave (§6.2's
        LCDLB overhead), and by the fault injector to model transient
        slowdowns/freezes.  Returns False when the node is not computing.
        """
        if self.computing and self.proc is not None and self.proc.is_alive:
            self.computing = False
            self.rec.event("steal", track=self.track, duration=duration)
            self.proc.interrupt(("steal", duration))
            return True
        return False

    def _pending_interrupt(self) -> Optional[Message]:
        # Structured filter: the slotted inbox answers this probe with a
        # single (tag, epoch) bucket lookup; it runs between iterations.
        return self.session.vm.inbox[self.me].peek(
            SlotFilter(Tag.INTERRUPT, self.epoch))

    # -- fault-tolerant receive ----------------------------------------------
    def _recv_timed(self, tag: Optional[Tag], epoch: Optional[int] = None,
                    match=None, timeout: Optional[float] = None
                    ) -> Generator[Event, None, Optional[Message]]:
        """Receive with an optional timeout; ``None`` means it expired.

        A timed-out get request is withdrawn from the mailbox so it can
        never swallow a later message.  With ``timeout=None`` this is
        exactly the legacy blocking receive.
        """
        vm = self.session.vm
        request = vm.recv(self.me, tag, epoch=epoch, match=match)
        if timeout is None or request.triggered:
            msg = yield request
            return msg
        env = self.session.env
        yield env.any_of([request, env.timeout(timeout)])
        if request.triggered:
            return request.value
        vm.inbox[self.me].cancel(request)
        return None

    def _declare_dead(self, peer: int) -> None:
        controller = self.session.controller
        if controller is not None:
            controller.declare_dead(peer, by=self.me)
        self.protocol.declare_peer_dead(peer)

    def _claim_orphans(self) -> int:
        """Absorb reclaimed orphan ranges before profiling (distributed
        schemes; the central balancer grants the pool explicitly)."""
        controller = self.session.controller
        if controller is None or not controller.has_orphans:
            return 0
        ranges = controller.claim_orphans()
        self.assignment.add(ranges)
        return sum(e - s for s, e in ranges)

    def _drain_stale(self) -> None:
        """Clear superseded traffic; absorb late WORK from past epochs.

        Staleness is decided in one place —
        :func:`repro.message.messages.stale_predicate` — not per call
        site.
        """
        inbox = self.session.vm.inbox[self.me]
        epoch = self.epoch
        inbox.drain(stale_predicate(epoch, (Tag.INTERRUPT,), inclusive=True))
        if not self.ft_enabled:
            return
        inbox.drain(stale_predicate(
            epoch, (Tag.CONTROL, Tag.PROFILE, Tag.INSTRUCTION)))
        controller = self.session.controller
        late = inbox.drain(stale_predicate(epoch, (Tag.WORK,)))
        for msg in late:
            if controller is None:
                self.assignment.add(msg.ranges)
                continue
            ranges = controller.try_consume(msg.src, self.me, msg.epoch)
            if ranges is None:
                continue  # duplicate of something already absorbed
            self.assignment.add(ranges if ranges else msg.ranges)

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, None, None]:
        """The node's top-level simulated process."""
        session = self.session
        env = session.env
        if session.is_crashed(self.me):
            return  # crashed during staging, before the loop began
        if not session.strategy.is_dlb:
            # Static baseline: compute the initial block, then stop.
            yield from self._compute()
            self.finish_time = env.now
            return
        while self.more_work:
            status = yield from self._compute()
            others = sorted(self.active - {self.me})
            if status == "finished" and not others \
                    and not session.centralized:
                if self._claim_orphans():
                    continue  # reclaimed a dead peer's work: keep going
                # Lone distributed node: nothing to exchange with.
                self.more_work = False
                break
            if self.periodic:
                proceed = yield from self._periodic_trigger(status, others)
                if not proceed:
                    continue
                others = sorted(self.active - {self.me})
            elif status == "finished":
                if others and self._pending_interrupt() is None:
                    # Receiver-initiated sync: interrupt the group (§3.1).
                    yield from session.vm.multicast(
                        self.protocol.stamp(InterruptMsg, dst=o,
                                            group=self.gid)
                        for o in others)
            outcome = yield from self._synchronize()
            self.next_deadline = env.now + session.options.sync_period
            if outcome in ("done", "retired"):
                break
        self.finish_time = env.now

    def _is_clock(self) -> bool:
        """The periodic-mode initiator: lowest-numbered active member."""
        return self.me == min(self.active)

    def _periodic_trigger(self, status: str, others: list[int]):
        """Timer-based synchronization entry (sync_mode="periodic").

        Returns True when the node should proceed into the sync, False
        when it should resume computing (spurious wakeup).
        """
        session = self.session
        env = session.env
        ft = session.ft
        if status == "deadline" or (status == "finished"
                                    and self._is_clock()):
            # The clock waits out the rest of the period (it may have
            # finished early), then interrupts the group.
            if env.now < self.next_deadline \
                    and self._pending_interrupt() is None:
                yield env.timeout(self.next_deadline - env.now)
            if others and self._pending_interrupt() is None:
                yield from session.vm.multicast(
                    self.protocol.stamp(InterruptMsg, dst=o, group=self.gid)
                    for o in others)
        elif status == "finished":
            # A non-clock finisher idles until the next periodic sync —
            # precisely the utilization loss the paper's interrupt-based
            # scheme avoids.
            if self._pending_interrupt() is not None:
                return True
            if not ft.enabled:
                yield session.vm.recv(self.me, Tag.INTERRUPT,
                                      epoch=self.epoch)
                return True
            # Hardened: the clock itself may be dead.  Wait with the
            # retry schedule; give up by declaring the clock dead and
            # (possibly) inheriting its duty.
            attempt = 0
            while True:
                msg = yield from self._recv_timed(
                    Tag.INTERRUPT, epoch=self.epoch,
                    timeout=max(ft.timeout_for(attempt),
                                session.options.sync_period))
                if msg is not None:
                    return True
                clock = min(self.active)
                if clock == self.me:
                    return True  # actives shifted: we are the clock now
                if attempt >= ft.max_retries:
                    self._declare_dead(clock)
                    if self.active and self._is_clock():
                        remaining = sorted(self.active - {self.me})
                        yield from session.vm.multicast(
                            self.protocol.stamp(InterruptMsg, dst=o,
                                                group=self.gid)
                            for o in remaining)
                    return True
                if self.session.controller is not None:
                    self.session.controller.note_retry()
                yield from self._oneshot_request(clock, "resend-profile")
                attempt += 1
        return True

    def _oneshot_request(self, peer: int, kind: str
                         ) -> Generator[Event, None, None]:
        yield from self.session.vm.send(
            self.protocol.stamp(ControlMsg, dst=peer, kind=kind))

    # -- computing ------------------------------------------------------------
    def _compute(self) -> Generator[Event, None, str]:
        """Execute assigned iterations until done or interrupted.

        Returns ``"finished"`` when the whole assignment completed, or
        ``"interrupted"`` after stopping at the next iteration boundary
        following a synchronization interrupt.
        """
        session = self.session
        env = session.env
        table = session.table
        protocol = self.protocol
        if self.assignment.empty:
            return "finished"
        total = self.assignment.work(table)
        consumed = 0.0
        clock_duty = (self.periodic and session.strategy.is_dlb
                      and self._is_clock())
        while True:
            if self._pending_interrupt() is not None:
                # The flag was raised while we were not interruptible
                # (e.g. during a steal pause): honor it at this boundary.
                return (yield from self._stop_at_boundary(consumed))
            if clock_duty and env.now >= self.next_deadline:
                result = yield from self._stop_at_boundary(consumed)
                return "deadline" if result == "interrupted" else result
            sub_start = env.now
            remaining = max(total - consumed, 0.0)
            finish_at = self.ws.time_to_complete(env.now, remaining)
            deadline_first = clock_duty and self.next_deadline < finish_at
            target = self.next_deadline if deadline_first else finish_at
            self.computing = True
            try:
                yield env.timeout(max(target - env.now, 0.0))
            except Interrupt as it:
                # ``computing`` was cleared by whoever interrupted us.
                protocol.note_busy(env.now - sub_start)
                self.rec.complete("compute", sub_start, env.now - sub_start,
                                  track=self.track)
                consumed += self.ws.capacity(sub_start, env.now)
                cause = it.cause
                if isinstance(cause, tuple) and cause[0] == "steal":
                    yield env.timeout(cause[1])
                    continue
                return (yield from self._stop_at_boundary(consumed))
            self.computing = False
            protocol.note_busy(env.now - sub_start)
            self.rec.complete("compute", sub_start, env.now - sub_start,
                              track=self.track)
            if deadline_first:
                consumed += self.ws.capacity(sub_start, env.now)
                result = yield from self._stop_at_boundary(consumed)
                return "deadline" if result == "interrupted" else result
            protocol.note_work(total)
            executed = self.assignment.take_head(self.assignment.count)
            session.record_executed(self.me, executed)
            return "finished"

    def _stop_at_boundary(self, consumed: float
                          ) -> Generator[Event, None, str]:
        """Finish the iteration in flight, book completed work, stop."""
        session = self.session
        env = session.env
        table = session.table
        k = self.assignment.head_count_for_work(table, consumed, round_up=True)
        boundary_work = self.assignment.head_work(table, k)
        extra = boundary_work - consumed
        if extra > _EPS:
            t_end = self.ws.time_to_complete(env.now, extra)
            self.protocol.note_busy(t_end - env.now)
            self.rec.complete("compute", env.now, t_end - env.now,
                              track=self.track)
            yield env.timeout(t_end - env.now)
        if k > 0:
            self.protocol.note_work(boundary_work)
            executed = self.assignment.take_head(k)
            session.record_executed(self.me, executed)
        return "interrupted"

    # -- synchronizing ------------------------------------------------------
    def _synchronize(self) -> Generator[Event, None, str]:
        """One synchronization point: profile, plan, move work."""
        session = self.session
        vm = session.vm
        env = session.env
        protocol = self.protocol
        epoch = self.epoch
        self.rec.event("sync", track=self.track, epoch=epoch,
                       mode="centralized" if session.centralized
                       else "distributed")
        # Consume this epoch's interrupt(s), stale control traffic, and
        # any late work parcels from previous epochs.
        self._drain_stale()
        if self.ft_enabled and not session.centralized:
            # Reclaimed orphans re-enter balancing through our profile.
            self._claim_orphans()

        profile = protocol.build_profile(group=self.gid)
        protocol.cache_profile(profile)

        if session.centralized:
            yield from vm.send(replace(profile, dst=session.lb_host))
            instr = yield from self._await_instruction(profile, epoch)
            if instr.select_scheme:
                session.apply_selection(instr.select_scheme,
                                        instr.select_group_size)
                self.gid = session.group_of[self.me]
            if instr.grant:
                self.assignment.add(instr.grant)
                self.rec.event("grant", track=self.track, epoch=epoch,
                               iterations=sum(e - s
                                              for s, e in instr.grant))
            if instr.done:
                self.more_work = False
                return "done"
            srcs = instr.incoming_srcs if self.ft_enabled else None
            yield from self._apply(instr.outgoing, instr.incoming,
                                   instr.active, instr.retire, epoch,
                                   incoming_srcs=srcs)
            if instr.retire:
                self.more_work = False
                return "retired"
        else:
            others = sorted(self.active - {self.me})
            yield from vm.multicast(replace(profile, dst=o) for o in others)
            profiles = {self.me: protocol.sync_profile(profile)}
            yield from self._gather_profiles(profiles, set(others), epoch)
            # Replicated new-distribution calculation (delta), slowed by
            # this node's current external load.
            t_end = self.ws.time_to_complete(
                env.now, session.policy.delta_seconds)
            yield env.timeout(t_end - env.now)
            plan = protocol.local_plan(profiles.values())
            session.record_plan(self.gid, epoch, plan)
            if plan.done:
                if self.ft_enabled and self._claim_orphans():
                    # Orphans surfaced after everyone else profiled zero
                    # work.  "Done" is a group consensus — every peer
                    # that computed this plan is terminating — so there
                    # is nobody left to rebalance with: finish the
                    # reclaimed ranges alone instead of interrupting
                    # peers that will never answer with fresh profiles.
                    self.active = {self.me}
                    protocol.advance_epoch()
                    return "continue"
                self.more_work = False
                return "done"
            retire_me = self.me in plan.retire
            srcs = None
            if self.ft_enabled:
                srcs = tuple(t.src for t in plan.incoming(self.me))
            yield from self._apply(plan.outgoing(self.me),
                                   len(plan.incoming(self.me)),
                                   plan.active, retire_me, epoch,
                                   incoming_srcs=srcs)
            if retire_me:
                self.more_work = False
                return "retired"
        protocol.advance_epoch()
        return "continue"

    def _await_instruction(self, profile, epoch: int
                           ) -> Generator[Event, None, InstructionMsg]:
        """Receive the balancer's instruction, re-sending the profile on
        timeout.  The master is reliable by assumption, so exhaustion
        here is unrecoverable rather than a declaration."""
        session = self.session
        ft = session.ft
        attempt = 0
        while True:
            timeout = ft.timeout_for(attempt) if self.ft_enabled else None
            instr = yield from self._recv_timed(Tag.INSTRUCTION, epoch=epoch,
                                                timeout=timeout)
            if instr is not None:
                assert isinstance(instr, InstructionMsg)
                return instr
            if attempt >= ft.max_retries:
                raise RetryExhaustedError(self.me, session.lb_host,
                                          "instruction", attempt + 1)
            if session.controller is not None:
                session.controller.note_retry()
            yield from session.vm.send(
                replace(profile, dst=session.lb_host))
            attempt += 1

    def _gather_profiles(self, profiles: dict[int, SyncProfile],
                         missing: set[int], epoch: int
                         ) -> Generator[Event, None, None]:
        """Collect the group's profiles (distributed schemes).

        Hardened mode nudges silent peers — which doubles as a lost
        interrupt — and, after a per-peer retry budget, declares them
        dead so the plan is computed over the survivors.  A *stale*
        profile (the peer is stuck applying an older instruction, e.g.
        waiting for work a dead node will never send) carries no data
        but proves the peer is alive, so only truly silent peers burn
        their budget.
        """
        session = self.session
        ft = session.ft
        protocol = self.protocol
        if not self.ft_enabled:
            while missing:
                msg = yield from self._recv_timed(
                    Tag.PROFILE, epoch=epoch,
                    match=lambda m: m.src in missing, timeout=None)
                profiles[msg.src] = protocol.sync_profile(msg)
                missing.discard(msg.src)
            return
        rounds: dict[int, int] = {peer: 0 for peer in missing}
        while missing:
            timeout = ft.timeout_for(min(rounds[p] for p in missing))
            msg = yield from self._recv_timed(
                Tag.PROFILE,
                match=lambda m: m.src in missing and m.epoch <= epoch,
                timeout=timeout)
            if msg is not None:
                if msg.epoch == epoch:
                    profiles[msg.src] = protocol.sync_profile(msg)
                    missing.discard(msg.src)
                    rounds.pop(msg.src, None)
                else:
                    # Stale duplicate: liveness evidence only.
                    rounds[msg.src] = 0
                continue
            dead_now = {peer for peer in missing if session.is_dead(peer)}
            for peer in dead_now:
                protocol.declare_peer_dead(peer)
            missing -= dead_now
            if not missing:
                break
            overdue = [peer for peer in sorted(missing)
                       if rounds[peer] >= ft.max_retries]
            for peer in overdue:
                self._declare_dead(peer)
                missing.discard(peer)
                rounds.pop(peer, None)
            if not missing:
                break
            if session.controller is not None:
                session.controller.note_retry()
            for peer in sorted(missing):
                rounds[peer] += 1
                yield from self._oneshot_request(peer, "resend-profile")

    def _apply(self, outgoing: tuple[TransferOrder, ...], incoming: int,
               new_active: tuple[int, ...], retire: bool, epoch: int,
               incoming_srcs: Optional[tuple[int, ...]] = None
               ) -> Generator[Event, None, None]:
        """Execute a plan's work movement from this node's viewpoint."""
        session = self.session
        vm = session.vm
        protocol = self.protocol
        controller = session.controller
        orders = list(outgoing)
        for idx, order in enumerate(orders):
            ranges, count = protocol.take_outgoing(
                order, retire=retire,
                ship_all=retire and idx == len(orders) - 1)
            if controller is not None and session.is_dead(order.dst):
                # The receiver was declared dead after planning: orphan
                # the parcel instead of shipping it into the void.
                controller.pool_ranges(ranges)
                continue
            msg = protocol.make_work_msg(order.dst, epoch, ranges, count)
            if controller is not None and msg.ranges:
                controller.register_parcel(self.me, order.dst, epoch,
                                           msg.ranges)
            protocol.cache_work(msg)
            self.rec.event("redistribute", track=self.track, epoch=epoch,
                           dst=order.dst, iterations=count, work=order.work)
            yield from vm.send(msg)
        if retire and self.ft_enabled and not self.assignment.empty:
            # Late-arriving reclaimed work on a retiring node: ship it to
            # the lowest-numbered survivor (it is absorbed at that node's
            # next sync), or orphan it if the group died around us.
            yield from self._ship_leftovers(new_active, epoch)
        if incoming_srcs is not None:
            yield from self._receive_work_ft(incoming_srcs, epoch)
        else:
            for _ in range(incoming):
                msg = yield vm.recv(self.me, Tag.WORK, epoch=epoch)
                if msg.ranges:
                    if controller is not None:
                        ranges = controller.try_consume(msg.src, self.me,
                                                        epoch)
                        if ranges is None:
                            continue
                        self.assignment.add(ranges if ranges else msg.ranges)
                    else:
                        self.assignment.add(msg.ranges)
        self.active = set(new_active) & set(session.groups[self.gid])

    def _ship_leftovers(self, new_active: tuple[int, ...], epoch: int
                        ) -> Generator[Event, None, None]:
        session = self.session
        controller = session.controller
        survivors = [n for n in sorted(new_active)
                     if n != self.me and not session.is_dead(n)]
        ranges = tuple(self.assignment.take_all())
        if not ranges:
            return
        if not survivors:
            if controller is not None:
                controller.pool_ranges(ranges)
            return
        dst = survivors[0]
        count = sum(e - s for s, e in ranges)
        msg = self.protocol.make_work_msg(dst, epoch, ranges, count)
        if controller is not None:
            controller.register_parcel(self.me, dst, epoch, ranges)
        yield from session.vm.send(msg)

    def _receive_work_ft(self, srcs: tuple[int, ...], epoch: int
                         ) -> Generator[Event, None, None]:
        """Timed receive of each expected work parcel, with retry."""
        session = self.session
        ft = session.ft
        controller = session.controller
        for src in srcs:
            attempt = 0
            while True:
                def matcher(m, src=src):
                    if m.src != src or m.epoch != epoch:
                        return False
                    return (m.tag is Tag.WORK
                            or (m.tag is Tag.CONTROL
                                and getattr(m, "kind", "") == "no-work"))
                msg = yield from self._recv_timed(
                    None, match=matcher, timeout=ft.timeout_for(attempt))
                if msg is not None:
                    if msg.tag is Tag.CONTROL:
                        break  # "no-work": the sender never owed us this
                    if not msg.ranges:
                        break
                    if controller is not None:
                        ranges = controller.try_consume(src, self.me, epoch)
                        if ranges is None:
                            break  # duplicate: already absorbed
                        self.assignment.add(ranges if ranges else msg.ranges)
                    else:
                        self.assignment.add(msg.ranges)
                    break
                if session.is_dead(src):
                    break  # parcel was orphaned into the pool on declare
                if attempt >= ft.max_retries:
                    self._declare_dead(src)
                    break
                if controller is not None:
                    controller.note_retry()
                yield from self._oneshot_request(src, "resend-work")
                attempt += 1
