"""Iteration assignments: ordered disjoint ranges of the global loop.

A processor's assignment is a list of half-open ranges ``[start, end)``
into the global iteration space.  The initial compiler distribution is
equal blocks (§3.5 — "the compiler initially distributes the iterations
of the loop equally"); redistribution moves ranges from the tail of a
sender's assignment, so locality of the surviving block is preserved.

All work arithmetic goes through :class:`repro.apps.workload.WorkTable`
so uniform and non-uniform loops share one code path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..apps.workload import WorkTable

__all__ = ["Assignment", "equal_block_partition", "merge_ranges"]

Range = tuple[int, int]


def merge_ranges(ranges: Iterable[Range]) -> list[Range]:
    """Sort, validate, and coalesce adjacent/overlap-free ranges."""
    out: list[Range] = []
    for start, end in sorted(ranges):
        if start >= end:
            continue
        if out and start < out[-1][1]:
            raise ValueError(f"overlapping ranges at {start}")
        if out and start == out[-1][1]:
            out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
    return out


def equal_block_partition(n_iterations: int, n_processors: int
                          ) -> list["Assignment"]:
    """The compiler's initial distribution: contiguous equal blocks.

    The first ``n_iterations % n_processors`` processors get one extra
    iteration, exactly like a BLOCK distribution of the parallel dim.
    """
    if n_iterations < 0 or n_processors < 1:
        raise ValueError("bad partition arguments")
    base, extra = divmod(n_iterations, n_processors)
    out = []
    start = 0
    for i in range(n_processors):
        size = base + (1 if i < extra else 0)
        out.append(Assignment([(start, start + size)] if size else []))
        start += size
    return out


def proportional_block_partition(n_iterations: int,
                                 weights: Sequence[float]
                                 ) -> list["Assignment"]:
    """Static speed-proportional blocks (the heterogeneous-cluster
    variant of the initial distribution; cf. the static schemes of
    Cierniak/Li/Zaki the paper cites).

    Block sizes follow the largest-remainder method over ``weights`` so
    counts are exact and deterministic.
    """
    if n_iterations < 0 or not weights:
        raise ValueError("bad partition arguments")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    total = float(sum(weights))
    raw = [n_iterations * w / total for w in weights]
    sizes = [int(r) for r in raw]
    remainder = n_iterations - sum(sizes)
    # Hand leftover iterations to the largest fractional parts.
    order = sorted(range(len(weights)), key=lambda i: (raw[i] - sizes[i], -i),
                   reverse=True)
    for i in order[:remainder]:
        sizes[i] += 1
    out = []
    start = 0
    for size in sizes:
        out.append(Assignment([(start, start + size)] if size else []))
        start += size
    return out


class Assignment:
    """A mutable set of iteration ranges owned by one processor."""

    def __init__(self, ranges: Sequence[Range] = ()) -> None:
        self.ranges: list[Range] = merge_ranges(ranges)

    # -- size / work -------------------------------------------------------
    @property
    def count(self) -> int:
        return sum(e - s for s, e in self.ranges)

    @property
    def empty(self) -> bool:
        return not self.ranges

    def work(self, table: WorkTable) -> float:
        return sum(table.range_work(s, e) for s, e in self.ranges)

    def head_work(self, table: WorkTable, k: int) -> float:
        """Work of the first ``k`` iterations in assignment order."""
        if k < 0 or k > self.count:
            raise ValueError("k out of range")
        total = 0.0
        left = k
        for s, e in self.ranges:
            take = min(left, e - s)
            total += table.range_work(s, s + take)
            left -= take
            if left == 0:
                break
        return total

    def head_count_for_work(self, table: WorkTable, work: float,
                            round_up: bool = True) -> int:
        """Iterations (from the head) that cover ``work`` seconds.

        Used when an interrupt lands mid-chunk: the processor finishes
        the iteration in flight (``round_up=True``) before responding.
        """
        if work <= 0:
            return 0
        done = 0
        remaining = work
        for s, e in self.ranges:
            span = table.range_work(s, e)
            if remaining > span * (1 - 1e-12):
                done += e - s
                remaining -= span
            else:
                done += table.count_for_work(s, remaining, end=e,
                                             round_up=round_up)
                return done
        return self.count

    # -- mutation ------------------------------------------------------------
    def take_head(self, k: int) -> list[Range]:
        """Remove and return the first ``k`` iterations (just executed)."""
        if k < 0 or k > self.count:
            raise ValueError("k out of range")
        taken: list[Range] = []
        while k > 0 and self.ranges:
            s, e = self.ranges[0]
            size = e - s
            if size <= k:
                taken.append((s, e))
                self.ranges.pop(0)
                k -= size
            else:
                taken.append((s, s + k))
                self.ranges[0] = (s + k, e)
                k = 0
        return taken

    def take_tail_count(self, k: int) -> list[Range]:
        """Remove and return the last ``k`` iterations (shipped away)."""
        if k < 0 or k > self.count:
            raise ValueError("k out of range")
        taken: list[Range] = []
        while k > 0 and self.ranges:
            s, e = self.ranges[-1]
            size = e - s
            if size <= k:
                taken.append((s, e))
                self.ranges.pop()
                k -= size
            else:
                taken.append((e - k, e))
                self.ranges[-1] = (s, e - k)
                k = 0
        return merge_ranges(taken)

    def take_tail_work(self, table: WorkTable, work: float,
                       keep_one: bool = True) -> tuple[list[Range], int]:
        """Remove roughly ``work`` seconds of iterations from the tail.

        Rounds *down* to whole iterations so the sender never ships more
        than its surplus; with ``keep_one`` the sender always retains at
        least one iteration (a non-retiring sender must stay active).
        Returns ``(ranges, count)`` — possibly empty when the order
        rounds to zero iterations.
        """
        if work <= 0:
            return [], 0
        # Count from the tail: find the largest suffix with work <= order.
        total = 0.0
        k = 0
        for s, e in reversed(self.ranges):
            span = table.range_work(s, e)
            if total + span <= work * (1 + 1e-12):
                total += span
                k += e - s
            else:
                lo, hi = s, e
                # Binary search the split point within this range.
                while lo < hi:
                    mid = (lo + hi) // 2
                    if total + table.range_work(mid, e) <= work * (1 + 1e-12):
                        hi = mid
                    else:
                        lo = mid + 1
                k += e - lo
                break
        limit = self.count - 1 if keep_one else self.count
        k = min(k, max(limit, 0))
        if k <= 0:
            return [], 0
        return self.take_tail_count(k), k

    def take_all(self) -> list[Range]:
        """Remove and return everything (a retiring processor)."""
        taken, self.ranges = self.ranges, []
        return taken

    def add(self, ranges: Sequence[Range]) -> None:
        """Merge received ranges into the assignment."""
        self.ranges = merge_ranges(list(self.ranges) + list(ranges))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Assignment({self.ranges!r})"
