"""The central load balancer's discrete-event adapter (GCDLB/LCDLB, §3.5).

One balancer lives on the master processor (which also computes).  It
collects profile messages, and once a group's set is complete it
computes the new distribution and sends instructions — *serially*, one
group after another, which is precisely what produces the paper's LCDLB
delay factor (§4.2): groups whose profiles complete while the balancer
is busy wait in its mailbox queue.

The protocol itself — profile boxes, the ready queue, group epochs,
instruction construction, cached-instruction recovery, probe clocks —
lives in the backend-agnostic
:class:`~repro.protocol.balancer.BalancerProtocol`.  This adapter owns
what only the simulation knows about: the event-heap receive loop,
stealing CPU from the co-located compute slave (each service charges a
context switch + the distribution calculation through
:meth:`NodeRuntime.steal`), and the §4.3 customized selection, which
consults the session's model before normal service resumes under the
winning scheme.

Fault tolerance (docs/FAULT_MODEL.md)
-------------------------------------
With ``options.fault_tolerance.enabled`` the balancer becomes a
pull-based failure detector.  Instead of blocking forever on the next
profile it wakes every ``liveness_timeout`` seconds and probes the
missing members of incomplete groups with ``resend-profile`` requests
(for a live member the probe doubles as a synchronization interrupt);
after ``max_retries`` silent probe rounds the missing members are
declared dead to the :class:`~repro.faults.FaultController`, which
reclaims their unfinished iterations into the orphan pool.  The
balancer grants the pool to a surviving group member at the next
service, folds it into that member's profile so the plan rebalances it,
and keeps answering re-sent profiles with cached instructions (lost
INSTRUCTION recovery) until every slave has exited.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Generator, Optional

from ..core.redistribution import SyncProfile
from ..message.messages import ControlMsg, InstructionMsg, ProfileMsg, Tag
from ..protocol.balancer import BalancerProtocol
from ..simulation import Event
from .session import LoopSession

__all__ = ["CentralBalancer"]


class CentralBalancer:
    """Asynchronous central balancer serving one or more groups."""

    def __init__(self, session: LoopSession) -> None:
        self.session = session
        self.host = session.lb_host
        self.protocol = BalancerProtocol(
            session.lb_host, session.groups,
            policy=session.policy,
            mean_iteration_time=session.mean_iteration_time,
            movement_cost_fn=session.movement_cost_fn,
            planner=session.planner,
            ft=session.ft)

    # -- protocol-state views ------------------------------------------------
    @property
    def pending(self) -> dict[int, dict[int, SyncProfile]]:
        return self.protocol.pending

    @property
    def ready(self) -> deque[int]:
        return self.protocol.ready

    @property
    def group_active(self) -> dict[int, set[int]]:
        return self.protocol.group_active

    @property
    def group_epoch(self) -> dict[int, int]:
        return self.protocol.group_epoch

    @property
    def groups_done(self) -> set[int]:
        return self.protocol.groups_done

    @groups_done.setter
    def groups_done(self, value: set[int]) -> None:
        self.protocol.groups_done = value

    @property
    def _last_instruction(self) -> dict[int, InstructionMsg]:
        return self.protocol.last_instruction

    @property
    def _probe_rounds(self) -> dict[int, int]:
        return self.protocol.probe_rounds

    # -- helpers ------------------------------------------------------------
    def _absorb(self, msg: ProfileMsg) -> None:
        # group_of is read from the session (not the protocol) because a
        # mid-loop CUSTOM selection rewrites the session's grouping.
        self.protocol.absorb(
            msg, group=self.session.group_of.get(msg.src, msg.group))

    def _service_wall_time(self, work_seconds: float) -> float:
        """Wall time of balancer computation on the (loaded) master."""
        ws = self.session.stations[self.host]
        return ws.time_to_complete(self.session.env.now, work_seconds) \
            - self.session.env.now

    def _steal_and_work(self, work_seconds: float
                        ) -> Generator[Event, None, None]:
        """Charge balancer computation, pausing a co-located compute."""
        wall = self._service_wall_time(work_seconds)
        node = self.session.nodes.get(self.host)
        if node is not None:
            node.steal(wall)
        yield self.session.env.timeout(wall)

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, None, None]:
        session = self.session
        vm = session.vm
        if not session.ft.enabled:
            while not self.protocol.all_done:
                msg = yield vm.recv(self.host, Tag.PROFILE)
                assert isinstance(msg, ProfileMsg)
                self._absorb(msg)
                while True:
                    gid = self.protocol.take_ready()
                    if gid is None:
                        break
                    yield from self._serve(gid)
            return
        yield from self._run_hardened()

    def _run_hardened(self) -> Generator[Event, None, None]:
        session = self.session
        vm = session.vm
        env = session.env
        ft = session.ft
        while not self.protocol.all_done:
            request = vm.recv(self.host, Tag.PROFILE)
            if not request.triggered:
                yield env.any_of(
                    [request, env.timeout(ft.liveness_timeout)])
            if request.triggered:
                msg = request.value
                yield from self._absorb_hardened(msg)
            else:
                vm.inbox[self.host].cancel(request)
                yield from self._probe_silent_groups()
            self._prune_dead()
            while True:
                gid = self.protocol.take_ready()
                if gid is None:
                    break
                yield from self._serve(gid)
        yield from self._lame_duck()

    def _absorb_hardened(self, msg: ProfileMsg
                         ) -> Generator[Event, None, None]:
        """Absorb a profile; a stale duplicate means the sender never got
        its instruction, so resend the cached one."""
        gid = self.session.group_of.get(msg.src, msg.group)
        epoch = self.group_epoch.get(gid, 0)
        # Any profile — fresh, duplicate or stale — proves its sender is
        # alive.  Only the *sender's* probe clock resets: a chatty
        # waiter cannot defer the verdict on its silent group-mates.
        self.protocol.note_alive(msg.src)
        if gid in self.groups_done or msg.epoch < epoch:
            cached = self.protocol.cached_instruction(msg.src, msg.epoch)
            if cached is not None:
                yield from self.session.vm.send(cached)
            return
        self._absorb(msg)

    def _probe_silent_groups(self) -> Generator[Event, None, None]:
        """Pull-based heartbeat: nudge members whose profile is overdue.

        For a live member the ``resend-profile`` control doubles as a
        synchronization interrupt (it answers at its next iteration
        boundary; a member stuck in an older epoch answers with a stale
        profile, which still proves it is alive).  A member whose *own*
        probe clock reaches ``max_retries`` unanswered rounds is
        declared dead.
        """
        session = self.session
        controller = session.controller
        protocol = self.protocol
        for gid in range(len(session.groups)):
            if gid in self.groups_done:
                continue
            alive = {n for n in self.group_active.get(gid, set())
                     if not session.is_dead(n)}
            missing = alive - set(self.pending.get(gid, {}))
            if not missing:
                continue
            overdue = protocol.overdue_members(gid, alive)
            for node in overdue:
                if controller is not None:
                    controller.declare_dead(node, by=self.host)
                protocol.note_alive(node)  # clear its probe clock
            probed = [node for node in sorted(missing)
                      if node not in overdue]
            if not probed:
                continue  # _prune_dead completes the group bookkeeping
            if controller is not None:
                controller.note_retry()
            epoch = self.group_epoch[gid]
            for node in probed:
                protocol.probe_rounds[node] = \
                    protocol.probe_rounds.get(node, 0) + 1
                yield from session.vm.send(ControlMsg(
                    src=self.host, dst=node, epoch=epoch,
                    kind="resend-profile"))

    def _prune_dead(self) -> None:
        """Fold death declarations into group membership and readiness."""
        controller = self.session.controller
        if controller is None or not controller.declared:
            return
        self.protocol.prune_dead(controller.declared)

    def _lame_duck(self) -> Generator[Event, None, None]:
        """After the last group finishes, keep answering lost-instruction
        retries until every slave process has exited — otherwise a node
        whose DONE instruction was dropped would exhaust its retries
        against a silent (exited) master."""
        session = self.session
        vm = session.vm
        env = session.env
        ft = session.ft

        def slaves_alive() -> bool:
            return any(rt.proc is not None and rt.proc.is_alive
                       for rt in session.nodes.values())

        while slaves_alive():
            request = vm.recv(self.host, Tag.PROFILE)
            if not request.triggered:
                yield env.any_of(
                    [request, env.timeout(ft.liveness_timeout)])
            if not request.triggered:
                vm.inbox[self.host].cancel(request)
                continue
            msg = request.value
            cached = self.protocol.cached_instruction(msg.src)
            if cached is not None:
                yield from vm.send(cached)

    def _grant_orphans(self, profiles: list[SyncProfile]
                       ) -> tuple[tuple[int, int], ...]:
        """Fold the orphan pool into the lowest-numbered member's profile.

        Returns the granted ranges (sent in that member's instruction);
        the receiving node adds them to its assignment before applying
        the plan, so reclaimed work re-enters balancing immediately.
        """
        controller = self.session.controller
        if controller is None or not controller.has_orphans or not profiles:
            return ()
        granted = tuple(controller.claim_orphans())
        table = self.session.table
        extra_work = sum(table.range_work(s, e) for s, e in granted)
        extra_count = sum(e - s for s, e in granted)
        target = profiles[0]
        profiles[0] = replace(
            target, remaining_work=target.remaining_work + extra_work,
            remaining_count=target.remaining_count + extra_count)
        return granted

    def _serve(self, gid: int) -> Generator[Event, None, None]:
        session = self.session
        policy = session.policy
        vm = session.vm
        protocol = self.protocol
        profiles = protocol.group_profiles(gid)
        granted = self._grant_orphans(profiles) if session.ft.enabled else ()

        selection: Optional[tuple[str, int]] = None
        if session.selector is not None and not session._selected:
            # §4.3: evaluate the model at the first synchronization point
            # and commit to the best scheme for the rest of the loop.
            scheme_code, group_size, report = session.selector(
                session, profiles)
            session.stats.selection_report = report
            yield from self._steal_and_work(policy.selection_seconds)
            selection = (scheme_code, group_size)

        # Distribution calculation plus the context switches in and out
        # of the balancer on the shared master processor.
        yield from self._steal_and_work(
            policy.delta_seconds + 2.0 * policy.context_switch_seconds)

        plan = protocol.plan(profiles)
        session.record_plan(gid, protocol.group_epoch[gid], plan)

        grant_dst = profiles[0].node if granted else None
        instructions = protocol.build_instructions(
            gid, plan, granted=granted, grant_dst=grant_dst,
            selection=selection)
        yield from vm.multicast(instructions)

        if selection is not None:
            session.apply_selection(*selection)
            protocol.reconfigure_after_selection(session.groups, plan.active)
            if plan.done or not session.strategy.centralized:
                # Work already finished, or a distributed scheme was
                # chosen: the central balancer retires either way.
                self.groups_done = set(range(len(session.groups)))
            return

        protocol.complete_group(gid, plan)
