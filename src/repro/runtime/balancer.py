"""The central load balancer process (GCDLB and LCDLB, §3.5).

One balancer lives on the master processor (which also computes).  It
collects profile messages, and once a group's set is complete it
computes the new distribution and sends instructions — *serially*, one
group after another, which is precisely what produces the paper's LCDLB
delay factor (§4.2): groups whose profiles complete while the balancer
is busy wait in its mailbox queue.

Because the balancer shares its processor with a computation slave, each
service steals CPU from the co-located node (context switch + the
distribution calculation), modeled through :meth:`NodeRuntime.steal`.

The same process implements the §4.3 customized selection: when the
session has a ``selector``, the first (global) synchronization runs the
model over the measured load and commits to the winning scheme before
normal service resumes under that scheme.

Fault tolerance (docs/FAULT_MODEL.md)
-------------------------------------
With ``options.fault_tolerance.enabled`` the balancer becomes a
pull-based failure detector.  Instead of blocking forever on the next
profile it wakes every ``liveness_timeout`` seconds and probes the
missing members of incomplete groups with ``resend-profile`` requests
(for a live member the probe doubles as a synchronization interrupt);
after ``max_retries`` silent probe rounds the missing members are
declared dead to the :class:`~repro.faults.FaultController`, which
reclaims their unfinished iterations into the orphan pool.  The
balancer grants the pool to a surviving group member at the next
service, folds it into that member's profile so the plan rebalances it,
and keeps answering re-sent profiles with cached instructions (lost
INSTRUCTION recovery) until every slave has exited.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Generator, Optional

from ..core.redistribution import SyncProfile, plan_redistribution
from ..message.messages import ControlMsg, InstructionMsg, ProfileMsg, Tag
from ..simulation import Event
from .session import LoopSession

__all__ = ["CentralBalancer"]


class CentralBalancer:
    """Asynchronous central balancer serving one or more groups."""

    def __init__(self, session: LoopSession) -> None:
        self.session = session
        self.host = session.lb_host
        self.pending: dict[int, dict[int, SyncProfile]] = {}
        self.ready: deque[int] = deque()
        self.group_active: dict[int, set[int]] = {
            g: set(members) for g, members in enumerate(session.groups)}
        self.group_epoch: dict[int, int] = {
            g: 0 for g in range(len(session.groups))}
        self.groups_done: set[int] = set()
        # Fault tolerance: lost-INSTRUCTION recovery and per-node probe
        # state (unanswered liveness probes since the node's last sign
        # of life).
        self._last_instruction: dict[int, InstructionMsg] = {}
        self._probe_rounds: dict[int, int] = {}

    # -- helpers ------------------------------------------------------------
    def _absorb(self, msg: ProfileMsg) -> None:
        group = self.session.group_of.get(msg.src, msg.group)
        box = self.pending.setdefault(group, {})
        box[msg.src] = SyncProfile(
            node=msg.src, remaining_work=msg.remaining_work,
            remaining_count=msg.remaining_count, rate=msg.rate)
        if (group not in self.groups_done
                and set(box) >= self.group_active.get(group, set())
                and group not in self.ready):
            self.ready.append(group)

    def _service_wall_time(self, work_seconds: float) -> float:
        """Wall time of balancer computation on the (loaded) master."""
        ws = self.session.stations[self.host]
        return ws.time_to_complete(self.session.env.now, work_seconds) \
            - self.session.env.now

    def _steal_and_work(self, work_seconds: float
                        ) -> Generator[Event, None, None]:
        """Charge balancer computation, pausing a co-located compute."""
        wall = self._service_wall_time(work_seconds)
        node = self.session.nodes.get(self.host)
        if node is not None:
            node.steal(wall)
        yield self.session.env.timeout(wall)

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, None, None]:
        session = self.session
        vm = session.vm
        if not session.ft.enabled:
            while len(self.groups_done) < len(session.groups):
                msg = yield vm.recv(self.host, Tag.PROFILE)
                assert isinstance(msg, ProfileMsg)
                self._absorb(msg)
                while self.ready:
                    gid = self.ready.popleft()
                    yield from self._serve(gid)
            return
        yield from self._run_hardened()

    def _run_hardened(self) -> Generator[Event, None, None]:
        session = self.session
        vm = session.vm
        env = session.env
        ft = session.ft
        while len(self.groups_done) < len(session.groups):
            request = vm.recv(self.host, Tag.PROFILE)
            if not request.triggered:
                yield env.any_of(
                    [request, env.timeout(ft.liveness_timeout)])
            if request.triggered:
                msg = request.value
                yield from self._absorb_hardened(msg)
            else:
                vm.inbox[self.host].cancel(request)
                yield from self._probe_silent_groups()
            self._prune_dead()
            while self.ready:
                gid = self.ready.popleft()
                yield from self._serve(gid)
        yield from self._lame_duck()

    def _absorb_hardened(self, msg: ProfileMsg
                         ) -> Generator[Event, None, None]:
        """Absorb a profile; a stale duplicate means the sender never got
        its instruction, so resend the cached one."""
        gid = self.session.group_of.get(msg.src, msg.group)
        epoch = self.group_epoch.get(gid, 0)
        # Any profile — fresh, duplicate or stale — proves its sender is
        # alive.  Only the *sender's* probe clock resets: a chatty
        # waiter cannot defer the verdict on its silent group-mates.
        self._probe_rounds.pop(msg.src, None)
        if gid in self.groups_done or msg.epoch < epoch:
            cached = self._last_instruction.get(msg.src)
            if cached is not None and cached.epoch == msg.epoch:
                yield from self.session.vm.send(cached)
            return
        self._absorb(msg)

    def _probe_silent_groups(self) -> Generator[Event, None, None]:
        """Pull-based heartbeat: nudge members whose profile is overdue.

        For a live member the ``resend-profile`` control doubles as a
        synchronization interrupt (it answers at its next iteration
        boundary; a member stuck in an older epoch answers with a stale
        profile, which still proves it is alive).  A member whose *own*
        probe clock reaches ``max_retries`` unanswered rounds is
        declared dead.
        """
        session = self.session
        controller = session.controller
        ft = session.ft
        for gid in range(len(session.groups)):
            if gid in self.groups_done:
                continue
            alive = {n for n in self.group_active.get(gid, set())
                     if not session.is_dead(n)}
            missing = alive - set(self.pending.get(gid, {}))
            if not missing:
                continue
            overdue = [node for node in sorted(missing)
                       if self._probe_rounds.get(node, 0) >= ft.max_retries]
            for node in overdue:
                if controller is not None:
                    controller.declare_dead(node, by=self.host)
                self._probe_rounds.pop(node, None)
            probed = [node for node in sorted(missing)
                      if node not in overdue]
            if not probed:
                continue  # _prune_dead completes the group bookkeeping
            if controller is not None:
                controller.note_retry()
            epoch = self.group_epoch[gid]
            for node in probed:
                self._probe_rounds[node] = \
                    self._probe_rounds.get(node, 0) + 1
                yield from session.vm.send(ControlMsg(
                    src=self.host, dst=node, epoch=epoch,
                    kind="resend-profile"))

    def _prune_dead(self) -> None:
        """Fold death declarations into group membership and readiness."""
        session = self.session
        controller = session.controller
        if controller is None or not controller.declared:
            return
        dead = controller.declared
        for gid in range(len(session.groups)):
            if gid in self.groups_done:
                continue
            members = self.group_active.get(gid, set())
            alive = members - dead
            if alive != members:
                self.group_active[gid] = alive
            box = self.pending.get(gid, {})
            for node in dead & set(box):
                # A profile from a node since declared dead: its work was
                # reclaimed into the pool, so planning with it would
                # double-count.
                del box[node]
            if not alive:
                self.groups_done.add(gid)
                if gid in self.ready:
                    self.ready.remove(gid)
                continue
            if (set(box) >= alive and gid not in self.ready
                    and gid not in self.groups_done):
                self.ready.append(gid)

    def _lame_duck(self) -> Generator[Event, None, None]:
        """After the last group finishes, keep answering lost-instruction
        retries until every slave process has exited — otherwise a node
        whose DONE instruction was dropped would exhaust its retries
        against a silent (exited) master."""
        session = self.session
        vm = session.vm
        env = session.env
        ft = session.ft

        def slaves_alive() -> bool:
            return any(rt.proc is not None and rt.proc.is_alive
                       for rt in session.nodes.values())

        while slaves_alive():
            request = vm.recv(self.host, Tag.PROFILE)
            if not request.triggered:
                yield env.any_of(
                    [request, env.timeout(ft.liveness_timeout)])
            if not request.triggered:
                vm.inbox[self.host].cancel(request)
                continue
            msg = request.value
            cached = self._last_instruction.get(msg.src)
            if cached is not None:
                yield from vm.send(cached)

    def _grant_orphans(self, profiles: list[SyncProfile]
                       ) -> tuple[tuple[int, int], ...]:
        """Fold the orphan pool into the lowest-numbered member's profile.

        Returns the granted ranges (sent in that member's instruction);
        the receiving node adds them to its assignment before applying
        the plan, so reclaimed work re-enters balancing immediately.
        """
        controller = self.session.controller
        if controller is None or not controller.has_orphans or not profiles:
            return ()
        granted = tuple(controller.claim_orphans())
        table = self.session.table
        extra_work = sum(table.range_work(s, e) for s, e in granted)
        extra_count = sum(e - s for s, e in granted)
        target = profiles[0]
        profiles[0] = replace(
            target, remaining_work=target.remaining_work + extra_work,
            remaining_count=target.remaining_count + extra_count)
        return granted

    def _serve(self, gid: int) -> Generator[Event, None, None]:
        session = self.session
        policy = session.policy
        vm = session.vm
        ft_on = session.ft.enabled
        epoch = self.group_epoch[gid]
        profiles = sorted(self.pending.pop(gid, {}).values(),
                          key=lambda p: p.node)
        granted = self._grant_orphans(profiles) if ft_on else ()

        selection: Optional[tuple[str, int]] = None
        if session.selector is not None and not session._selected:
            # §4.3: evaluate the model at the first synchronization point
            # and commit to the best scheme for the rest of the loop.
            scheme_code, group_size, report = session.selector(
                session, profiles)
            session.stats.selection_report = report
            yield from self._steal_and_work(policy.selection_seconds)
            selection = (scheme_code, group_size)

        # Distribution calculation plus the context switches in and out
        # of the balancer on the shared master processor.
        yield from self._steal_and_work(
            policy.delta_seconds + 2.0 * policy.context_switch_seconds)

        plan = plan_redistribution(
            profiles, policy, session.mean_iteration_time,
            session.movement_cost_fn)
        session.record_plan(gid, epoch, plan)

        grant_dst = profiles[0].node if granted else None
        members = sorted(self.group_active[gid])
        instructions = []
        for node in members:
            instructions.append(InstructionMsg(
                src=self.host, dst=node, epoch=epoch, group=gid,
                outgoing=plan.outgoing(node),
                incoming=len(plan.incoming(node)),
                incoming_srcs=tuple(t.src for t in plan.incoming(node))
                if ft_on else (),
                grant=granted if node == grant_dst else (),
                retire=node in plan.retire,
                done=plan.done,
                active=plan.active,
                select_scheme=selection[0] if selection else "",
                select_group_size=selection[1] if selection else 0))
        if ft_on:
            for instr in instructions:
                self._last_instruction[instr.dst] = instr
        yield from vm.multicast(instructions)

        if selection is not None:
            session.apply_selection(*selection)
            self._reconfigure_after_selection(plan.active)
            if plan.done or not session.strategy.centralized:
                # Work already finished, or a distributed scheme was
                # chosen: the central balancer retires either way.
                self.groups_done = set(range(len(session.groups)))
            return

        if plan.done or not plan.active:
            self.groups_done.add(gid)
        else:
            self.group_active[gid] = set(plan.active)
            self.group_epoch[gid] = epoch + 1
            for node in plan.active:
                self._probe_rounds.pop(node, None)

    def _reconfigure_after_selection(self, globally_active: tuple[int, ...]
                                     ) -> None:
        """Rebuild group bookkeeping under the newly selected scheme."""
        session = self.session
        self.pending.clear()
        self.ready.clear()
        active = set(globally_active)
        self.group_active = {
            g: set(members) & active
            for g, members in enumerate(session.groups)}
        self.group_epoch = {g: 1 for g in range(len(session.groups))}
        self.groups_done = {g for g, mem in self.group_active.items()
                            if not mem}
        self._probe_rounds = {}
