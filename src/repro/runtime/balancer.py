"""The central load balancer process (GCDLB and LCDLB, §3.5).

One balancer lives on the master processor (which also computes).  It
collects profile messages, and once a group's set is complete it
computes the new distribution and sends instructions — *serially*, one
group after another, which is precisely what produces the paper's LCDLB
delay factor (§4.2): groups whose profiles complete while the balancer
is busy wait in its mailbox queue.

Because the balancer shares its processor with a computation slave, each
service steals CPU from the co-located node (context switch + the
distribution calculation), modeled through :meth:`NodeRuntime.steal`.

The same process implements the §4.3 customized selection: when the
session has a ``selector``, the first (global) synchronization runs the
model over the measured load and commits to the winning scheme before
normal service resumes under that scheme.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from ..core.redistribution import SyncProfile, plan_redistribution
from ..message.messages import InstructionMsg, ProfileMsg, Tag
from ..simulation import Event
from .session import LoopSession

__all__ = ["CentralBalancer"]


class CentralBalancer:
    """Asynchronous central balancer serving one or more groups."""

    def __init__(self, session: LoopSession) -> None:
        self.session = session
        self.host = session.lb_host
        self.pending: dict[int, dict[int, SyncProfile]] = {}
        self.ready: deque[int] = deque()
        self.group_active: dict[int, set[int]] = {
            g: set(members) for g, members in enumerate(session.groups)}
        self.group_epoch: dict[int, int] = {
            g: 0 for g in range(len(session.groups))}
        self.groups_done: set[int] = set()

    # -- helpers ------------------------------------------------------------
    def _absorb(self, msg: ProfileMsg) -> None:
        group = self.session.group_of.get(msg.src, msg.group)
        box = self.pending.setdefault(group, {})
        box[msg.src] = SyncProfile(
            node=msg.src, remaining_work=msg.remaining_work,
            remaining_count=msg.remaining_count, rate=msg.rate)
        if (group not in self.groups_done
                and set(box) >= self.group_active.get(group, set())
                and group not in self.ready):
            self.ready.append(group)

    def _service_wall_time(self, work_seconds: float) -> float:
        """Wall time of balancer computation on the (loaded) master."""
        ws = self.session.stations[self.host]
        return ws.time_to_complete(self.session.env.now, work_seconds) \
            - self.session.env.now

    def _steal_and_work(self, work_seconds: float
                        ) -> Generator[Event, None, None]:
        """Charge balancer computation, pausing a co-located compute."""
        wall = self._service_wall_time(work_seconds)
        node = self.session.nodes.get(self.host)
        if node is not None:
            node.steal(wall)
        yield self.session.env.timeout(wall)

    # -- main loop ----------------------------------------------------------
    def run(self) -> Generator[Event, None, None]:
        session = self.session
        vm = session.vm
        while len(self.groups_done) < len(session.groups):
            msg = yield vm.recv(self.host, Tag.PROFILE)
            assert isinstance(msg, ProfileMsg)
            self._absorb(msg)
            while self.ready:
                gid = self.ready.popleft()
                yield from self._serve(gid)

    def _serve(self, gid: int) -> Generator[Event, None, None]:
        session = self.session
        policy = session.policy
        vm = session.vm
        epoch = self.group_epoch[gid]
        profiles = sorted(self.pending.pop(gid, {}).values(),
                          key=lambda p: p.node)

        selection: Optional[tuple[str, int]] = None
        if session.selector is not None and not session._selected:
            # §4.3: evaluate the model at the first synchronization point
            # and commit to the best scheme for the rest of the loop.
            scheme_code, group_size, report = session.selector(
                session, profiles)
            session.stats.selection_report = report
            yield from self._steal_and_work(policy.selection_seconds)
            selection = (scheme_code, group_size)

        # Distribution calculation plus the context switches in and out
        # of the balancer on the shared master processor.
        yield from self._steal_and_work(
            policy.delta_seconds + 2.0 * policy.context_switch_seconds)

        plan = plan_redistribution(
            profiles, policy, session.mean_iteration_time,
            session.movement_cost_fn)
        session.record_plan(gid, epoch, plan)

        members = sorted(self.group_active[gid])
        instructions = []
        for node in members:
            instructions.append(InstructionMsg(
                src=self.host, dst=node, epoch=epoch, group=gid,
                outgoing=plan.outgoing(node),
                incoming=len(plan.incoming(node)),
                retire=node in plan.retire,
                done=plan.done,
                active=plan.active,
                select_scheme=selection[0] if selection else "",
                select_group_size=selection[1] if selection else 0))
        yield from vm.multicast(instructions)

        if selection is not None:
            session.apply_selection(*selection)
            self._reconfigure_after_selection(plan.active)
            if plan.done or not session.strategy.centralized:
                # Work already finished, or a distributed scheme was
                # chosen: the central balancer retires either way.
                self.groups_done = set(range(len(session.groups)))
            return

        if plan.done or not plan.active:
            self.groups_done.add(gid)
        else:
            self.group_active[gid] = set(plan.active)
            self.group_epoch[gid] = epoch + 1

    def _reconfigure_after_selection(self, globally_active: tuple[int, ...]
                                     ) -> None:
        """Rebuild group bookkeeping under the newly selected scheme."""
        session = self.session
        self.pending.clear()
        self.ready.clear()
        active = set(globally_active)
        self.group_active = {
            g: set(members) & active
            for g, members in enumerate(session.groups)}
        self.group_epoch = {g: 1 for g in range(len(session.groups))}
        self.groups_done = {g for g, mem in self.group_active.items()
                            if not mem}
