"""Shared state of one load-balanced loop execution (a *session*).

A :class:`LoopSession` bundles everything the node processes and the
central balancer need to coordinate: the simulation environment, the
virtual machine, the workstations, the loop's work table, the strategy
configuration (which may be *re*configured mid-run by the customized
selection of §4.3), group membership, and the statistics sink.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from ..apps.workload import LoopSpec, WorkTable
from ..core.diffusion import make_diffusion_planner
from ..core.policy import DlbPolicy
from ..core.redistribution import (
    MovementCostFn,
    PlannerFn,
    RedistributionPlan,
    make_movement_cost_estimator,
    make_topology_movement_cost_estimator,
)
from ..core.strategies.base import StrategySpec
from ..core.strategies.registry import get_strategy
from ..machine.cluster import build_groups
from ..machine.workstation import Workstation
from ..message.pvm import VirtualMachine
from ..network.topology import Topology, resolve_topology
from ..obs.trace import NULL_RECORDER
from ..simulation import Environment
from .options import RunOptions
from .stats import LoopRunStats, SyncRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.controller import FaultController
    from .node import NodeRuntime

__all__ = ["LoopSession"]

#: Host index of the master processor / central load balancer.
MASTER = 0


class LoopSession:
    """Coordination state shared by all processes of one loop run."""

    def __init__(self, env: Environment, vm: VirtualMachine,
                 stations: list[Workstation], loop: LoopSpec,
                 strategy: StrategySpec, options: RunOptions,
                 selector: Optional[Callable] = None) -> None:
        self.env = env
        self.vm = vm
        self.stations = stations
        self.loop = loop
        self.table: WorkTable = loop.work_table()
        self.options = options
        self.policy: DlbPolicy = options.policy
        self.strategy = strategy
        self.selector = selector
        self.lb_host = MASTER
        self.n = len(stations)
        self.mean_iteration_time = self.table.total_work / self.table.n

        k = options.effective_group_size(self.n, strategy.group_size)
        self.group_size = k
        if strategy.global_scope or not strategy.is_dlb:
            self.groups: list[list[int]] = [list(range(self.n))]
        else:
            self.groups = build_groups(self.n, k,
                                       formation=options.group_formation,
                                       seed=options.group_seed)
        self.group_of = {node: g for g, members in enumerate(self.groups)
                         for node in members}

        #: The run's network graph, or ``None`` for the default shared
        #: bus (the seed configuration — every code path below must stay
        #: bit-identical in that case).
        self.topology: Optional[Topology] = None
        if options.topology is not None:
            self.topology = resolve_topology(options.topology, self.n)

        self.movement_cost_fn: Optional[MovementCostFn] = None
        if self.policy.include_movement_cost:
            if self.topology is not None and not self.topology.shared_medium:
                self.movement_cost_fn = make_topology_movement_cost_estimator(
                    options.network, self.topology,
                    dc_bytes=loop.dc_bytes,
                    mean_iteration_time=self.mean_iteration_time)
            else:
                self.movement_cost_fn = make_movement_cost_estimator(
                    latency=options.network.latency,
                    bandwidth=options.network.bandwidth,
                    dc_bytes=loop.dc_bytes,
                    mean_iteration_time=self.mean_iteration_time)

        #: Planner override for the protocol layer: diffusion binds the
        #: topology here; ``None`` means the eq.-3 planner (seed path).
        self.planner: Optional[PlannerFn] = self._planner_for(strategy)

        self.stats = LoopRunStats(
            loop_name=loop.name, strategy=strategy.name,
            n_processors=self.n, group_size=self.group_size)
        self.nodes: dict[int, "NodeRuntime"] = {}
        #: Structured trace sink; the shared no-op singleton unless the
        #: caller supplied a recorder (see docs/OBSERVABILITY.md).
        self.recorder = options.recorder or NULL_RECORDER
        self._recorded_plans: set[tuple[int, int]] = set()
        self._selected = False
        #: Fault injection / recovery state; None on a fault-free run
        #: with fault tolerance disabled (the common case).
        self.controller: Optional["FaultController"] = None

    # -- fault-model view ---------------------------------------------------
    @property
    def ft(self):
        """The fault-tolerance knobs (hardened protocol iff ``ft.enabled``)."""
        return self.options.fault_tolerance

    def is_dead(self, node: int) -> bool:
        """Whether ``node`` has been *declared* dead (detector view)."""
        return (self.controller is not None
                and self.controller.is_declared_dead(node))

    def is_crashed(self, node: int) -> bool:
        """Ground truth — only injection/executor code may consult this."""
        return (self.controller is not None
                and self.controller.is_crashed(node))

    # -- strategy view ------------------------------------------------------
    @property
    def centralized(self) -> bool:
        """Whether sync traffic currently flows through the central LB.

        The customized strategy starts centralized (the pseudo-master
        handles the first synchronization, §5.2) and may hand over to a
        distributed scheme after selection.
        """
        if self.strategy.code == "CUSTOM":
            return True  # until apply_selection replaces the strategy
        return self.strategy.centralized

    def _planner_for(self, strategy: StrategySpec) -> Optional[PlannerFn]:
        """The protocol planner a strategy needs (``None`` = eq. 3)."""
        if strategy.code != "DIFF":
            return None
        topology = self.topology if self.topology is not None \
            else Topology.bus(self.n)
        return make_diffusion_planner(topology, self.policy,
                                      self.mean_iteration_time,
                                      self.movement_cost_fn)

    def apply_selection(self, scheme_code: str, group_size: int) -> None:
        """Commit to the selected scheme (idempotent, §4.3)."""
        if self._selected:
            return
        self._selected = True
        chosen = get_strategy(scheme_code)
        self.stats.selected_scheme = chosen.name
        self.strategy = chosen
        if group_size:
            self.group_size = min(group_size, self.n)
        if chosen.global_scope:
            self.groups = [list(range(self.n))]
        else:
            self.groups = build_groups(self.n, self.group_size,
                                       formation=self.options.group_formation,
                                       seed=self.options.group_seed)
        self.group_of = {node: g for g, members in enumerate(self.groups)
                         for node in members}
        # Selecting DIFF swaps the planner into the live node protocols
        # (selecting anything else swaps it back out — a no-op today,
        # since CUSTOM always starts on the eq.-3 planner).
        self.planner = self._planner_for(chosen)
        for runtime in self.nodes.values():
            runtime.protocol.planner = self.planner

    # -- bookkeeping ----------------------------------------------------------
    def record_plan(self, group: int, epoch: int,
                    plan: RedistributionPlan) -> None:
        """Record a sync outcome once (replicated balancers call this P times)."""
        key = (group, epoch)
        if key in self._recorded_plans:
            return
        self._recorded_plans.add(key)
        self.recorder.event(
            "decision", track="balancer", group=group, epoch=epoch,
            reason=plan.reason,
            moved=plan.work_to_move if plan.move else 0.0,
            n_transfers=len(plan.transfers))
        if not self.options.trace:
            return
        self.stats.record_sync(SyncRecord(
            time=self.env.now, group=group, epoch=epoch, reason=plan.reason,
            moved_work=plan.work_to_move if plan.move else 0.0,
            n_transfers=len(plan.transfers), retired=plan.retire,
            predicted_current=plan.predicted_current,
            predicted_balanced=plan.predicted_balanced))

    def record_executed(self, node: int, ranges: list[tuple[int, int]]) -> None:
        self.stats.executed_by_node.setdefault(node, []).extend(ranges)
        if self.options.on_execute is not None and ranges:
            self.options.on_execute(node, ranges)
