"""DLB array descriptors (the paper's ``DLB_array`` structure, §5.2).

"For each shared array we also have an DLB_array structure, which holds
information about the arrays, like the number of dimensions, array
size, element type, and distribution type ... used by the run-time
library to scatter, gather, and redistribute data."

:class:`DlbArray` is that structure: per-dimension BLOCK / CYCLIC /
WHOLE distribution with the owner and local-index arithmetic the
scatter/gather/redistribution paths need, and byte accounting for the
message-size model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DlbArray", "Distribution"]

VALID = ("BLOCK", "CYCLIC", "WHOLE")
Distribution = str


@dataclass(frozen=True)
class DlbArray:
    """Shared-array metadata for the DLB run-time library.

    Attributes
    ----------
    name:
        Array identifier (matches the compiler's declaration).
    shape:
        Concrete extent per dimension.
    distribution:
        ``"BLOCK"``, ``"CYCLIC"`` or ``"WHOLE"`` per dimension.  At
        most one dimension may be partitioned (the paper distributes
        along a single dimension; the parallel loop indexes it).
    element_bytes:
        Bytes per element (8 for C doubles).
    """

    name: str
    shape: tuple[int, ...]
    distribution: tuple[Distribution, ...]
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError(f"array {self.name}: empty shape")
        if any(s < 1 for s in self.shape):
            raise ValueError(f"array {self.name}: non-positive extent")
        if len(self.shape) != len(self.distribution):
            raise ValueError(f"array {self.name}: shape/distribution "
                             "rank mismatch")
        if any(d not in VALID for d in self.distribution):
            raise ValueError(f"array {self.name}: bad distribution")
        if self.element_bytes < 1:
            raise ValueError("element_bytes must be positive")
        if len(self.partitioned_dims) > 1:
            raise ValueError(f"array {self.name}: at most one "
                             "partitioned dimension is supported")

    # -- shape/byte accounting ------------------------------------------
    @property
    def partitioned_dims(self) -> tuple[int, ...]:
        return tuple(d for d, dist in enumerate(self.distribution)
                     if dist != "WHOLE")

    @property
    def partitioned_dim(self) -> int | None:
        dims = self.partitioned_dims
        return dims[0] if dims else None

    @property
    def replicated(self) -> bool:
        return self.partitioned_dim is None

    @property
    def total_bytes(self) -> int:
        total = self.element_bytes
        for extent in self.shape:
            total *= extent
        return total

    @property
    def section_bytes(self) -> int:
        """Bytes of one slice along the partitioned dimension (a "row"
        for dim 0, a "column" for dim 1) — what moves per index."""
        dim = self.partitioned_dim
        if dim is None:
            return self.total_bytes
        return self.total_bytes // self.shape[dim]

    # -- ownership -------------------------------------------------------
    def owner(self, index: int, n_processors: int) -> int:
        """Which processor initially owns global ``index`` along the
        partitioned dimension."""
        dim = self.partitioned_dim
        if dim is None:
            raise ValueError(f"array {self.name} is replicated")
        extent = self.shape[dim]
        if not 0 <= index < extent:
            raise IndexError(f"index {index} out of range 0..{extent - 1}")
        if self.distribution[dim] == "CYCLIC":
            return index % n_processors
        base, extra = divmod(extent, n_processors)
        # BLOCK: the first ``extra`` owners hold (base + 1) indices.
        boundary = extra * (base + 1)
        if index < boundary:
            return index // (base + 1)
        if base == 0:
            return extra - 1 if extra else 0
        return extra + (index - boundary) // base

    def owned_indices(self, rank: int, n_processors: int) -> list[int]:
        """All global indices processor ``rank`` initially owns."""
        dim = self.partitioned_dim
        if dim is None:
            raise ValueError(f"array {self.name} is replicated")
        extent = self.shape[dim]
        if not 0 <= rank < n_processors:
            raise IndexError("bad rank")
        if self.distribution[dim] == "CYCLIC":
            return list(range(rank, extent, n_processors))
        base, extra = divmod(extent, n_processors)
        start = rank * base + min(rank, extra)
        size = base + (1 if rank < extra else 0)
        return list(range(start, start + size))

    def local_index(self, index: int, n_processors: int) -> int:
        """Position of global ``index`` within its owner's local block."""
        dim = self.partitioned_dim
        if dim is None:
            raise ValueError(f"array {self.name} is replicated")
        if self.distribution[dim] == "CYCLIC":
            return index // n_processors
        rank = self.owner(index, n_processors)
        base, extra = divmod(self.shape[dim], n_processors)
        start = rank * base + min(rank, extra)
        return index - start

    # -- staging sizes -----------------------------------------------------
    def scatter_bytes(self, rank: int, n_processors: int) -> int:
        """Bytes the master ships to ``rank`` at the initial scatter."""
        if self.replicated:
            return self.total_bytes if rank != 0 else 0
        return len(self.owned_indices(rank, n_processors)) \
            * self.section_bytes

    def move_bytes(self, n_indices: int) -> int:
        """Bytes to migrate ``n_indices`` sections (redistribution)."""
        if n_indices < 0:
            raise ValueError("n_indices must be non-negative")
        if self.replicated:
            return 0
        return n_indices * self.section_bytes
