"""Run statistics: what DLB_gather_data reports at the end of a run.

The paper's run-time system collects "DLB statistics (such as number of
redistributions, number of synchronizations, amount of work moved,
etc.)"; these dataclasses are that report, extended with per-sync
records and message counts for the analysis in the experiments package.
"""

from __future__ import annotations

import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SyncRecord", "LoopRunStats", "StageRunStats", "AppRunStats",
           "environment_fingerprint"]


def environment_fingerprint(**extra) -> dict:
    """Where this run executed: stamped into ``LoopRunStats.environment``.

    Records the facts needed to interpret wall-clock numbers post-hoc
    (interpreter, platform, core count); backends add their own keys
    (e.g. the process backend's multiprocessing ``start_method``).
    """
    fp = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }
    fp.update({k: v for k, v in extra.items() if v is not None})
    return fp


@dataclass
class SyncRecord:
    """One synchronization point as observed by the balancer."""

    time: float
    group: int
    epoch: int
    reason: str           # "moved" | "below-move-threshold" | "unprofitable" | "done"
    moved_work: float
    n_transfers: int
    retired: tuple[int, ...]
    predicted_current: float = 0.0
    predicted_balanced: float = 0.0


@dataclass
class LoopRunStats:
    """Statistics for one load-balanced loop execution."""

    loop_name: str
    strategy: str
    n_processors: int
    group_size: int
    #: Which ExecutionBackend produced this run ("sim": virtual seconds
    #: on the DES kernel; "thread": wall-clock seconds on real threads).
    #: Exported to CSV/JSON so runs stay distinguishable post-hoc.
    backend: str = "sim"
    start_time: float = 0.0
    end_time: float = 0.0
    syncs: list[SyncRecord] = field(default_factory=list)
    executed_by_node: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    node_finish_times: dict[int, float] = field(default_factory=dict)
    messages_by_tag: dict[str, int] = field(default_factory=dict)
    network_messages: int = 0
    network_bytes: int = 0
    # Transport-vs-shared-memory split (process backend; zero elsewhere):
    # bytes actually pickled onto inter-process queues, and iteration
    # data that moved by shared-memory remapping instead of copying.
    transport_payload_bytes: int = 0
    shm_data_bytes: int = 0
    # Socket backend: transport_payload_bytes broken down by wire-frame
    # type (MSG, PING, STAT, ... — see docs/WIRE_PROTOCOL.md); empty on
    # the in-process backends.
    payload_by_frame: dict[str, int] = field(default_factory=dict)
    # Elastic membership (socket backend): nodes that registered
    # mid-run and nodes that departed on purpose (planned leave).
    joined_nodes: tuple[int, ...] = ()
    left_nodes: tuple[int, ...] = ()
    selected_scheme: Optional[str] = None
    selection_report: Optional[object] = None
    # Fault-model bookkeeping (docs/FAULT_MODEL.md); all zero/empty on a
    # fault-free run.
    crashed_nodes: tuple[int, ...] = ()
    fenced_nodes: tuple[int, ...] = ()
    declared_dead: tuple[int, ...] = ()
    dropped_messages: int = 0
    delayed_messages: int = 0
    fault_retries: int = 0
    reclaimed_iterations: int = 0
    salvaged_iterations: int = 0
    #: Where the run executed (:func:`environment_fingerprint`): python
    #: version, platform, cpu count, and backend-specific keys such as
    #: the multiprocessing start method.  Exported to CSV/JSON.
    environment: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def faulted(self) -> bool:
        """Whether this run experienced any injected fault."""
        return bool(self.crashed_nodes or self.dropped_messages
                    or self.delayed_messages)

    @property
    def n_syncs(self) -> int:
        return len(self.syncs)

    @property
    def n_redistributions(self) -> int:
        # Any sync that shipped work counts, whatever the planner's
        # reason string ("moved" for eq.-3 plans, "diffused" for DIFF).
        return sum(1 for s in self.syncs if s.n_transfers > 0)

    @property
    def total_work_moved(self) -> float:
        return sum(s.moved_work for s in self.syncs if s.n_transfers > 0)

    def executed_count(self, node: int) -> int:
        return sum(e - s for s, e in self.executed_by_node.get(node, []))

    def record_sync(self, record: SyncRecord) -> None:
        self.syncs.append(record)

    def summary(self) -> str:
        backend = "" if self.backend == "sim" else f" backend={self.backend}"
        base = (f"{self.loop_name} [{self.strategy}] P={self.n_processors} "
                f"K={self.group_size}{backend}: time={self.duration:.3f}s "
                f"syncs={self.n_syncs} moves={self.n_redistributions} "
                f"moved={self.total_work_moved:.3f}s-of-work "
                f"msgs={self.network_messages}")
        if self.faulted:
            base += (f" | faults: crashed={list(self.crashed_nodes)} "
                     f"dropped={self.dropped_messages} "
                     f"retries={self.fault_retries} "
                     f"reclaimed={self.reclaimed_iterations} "
                     f"salvaged={self.salvaged_iterations}")
        if self.joined_nodes or self.left_nodes:
            base += (f" | membership: joined={list(self.joined_nodes)} "
                     f"left={list(self.left_nodes)}")
        return base


@dataclass
class StageRunStats:
    """A sequential (master-only) stage: transpose, staging, ..."""

    stage_name: str
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass
class AppRunStats:
    """Statistics for a full application run (all stages, one env)."""

    app_name: str
    strategy: str
    n_processors: int
    stages: list[object] = field(default_factory=list)  # Loop/Stage stats

    @property
    def total_duration(self) -> float:
        return sum(s.duration for s in self.stages)

    @property
    def loop_stats(self) -> list[LoopRunStats]:
        return [s for s in self.stages if isinstance(s, LoopRunStats)]

    def loop(self, name: str) -> LoopRunStats:
        for s in self.loop_stats:
            if s.loop_name == name:
                return s
        raise KeyError(f"no loop stats named {name!r}")

    def summary(self) -> str:
        lines = [f"{self.app_name} [{self.strategy}] "
                 f"total={self.total_duration:.3f}s"]
        lines += ["  " + (s.summary() if isinstance(s, LoopRunStats)
                          else f"{s.stage_name}: {s.duration:.3f}s")
                  for s in self.stages]
        return "\n".join(lines)
