"""Fault injection and recovery bookkeeping for one loop run.

One :class:`FaultController` per :class:`~repro.runtime.session.LoopSession`
plays three roles (see ``docs/FAULT_MODEL.md`` for the model it enforces):

**Injector.**  It schedules the plan's node crashes (fail-stop: the
victim's simulated process is stopped wherever it is) and slowdowns
(compute pauses through the existing steal mechanism), and installs a
hook on the shared bus that drops or delays matching messages using the
plan's seeded RNG.

**Failure detector (registry).**  Ground truth (``crashed``) is known
only to the injector.  Protocol peers learn of a death exclusively by
*declaring* it after a timed request exhausts its retry budget; the
declaration is recorded here (``declared``) and is visible to every
survivor — this object stands in for the master-resident recovery
registry a real NOW deployment would gossip through.  Declaring a node
that is in fact alive **fences** it (the node is forcibly crashed),
keeping the fail-stop abstraction exact even under false suspicion.

**Work ledger + orphan pool.**  Every migrated iteration range is
registered as a :class:`WorkParcel` when the sender takes it off its
assignment, marked consumed when a receiver absorbs it, and swept into
the orphan ``pool`` when a death strands it.  The pool also receives a
dead node's unfinished assignment.  Survivors claim pooled ranges at
synchronization points; whatever remains is executed by the executor's
final salvage pass, so the exactly-once coverage invariant survives any
plan with at least one surviving processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..message.messages import Message, WorkMsg
from ..simulation import Event
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.session import LoopSession

__all__ = ["FaultController", "WorkParcel"]

Range = tuple[int, int]


@dataclass
class WorkParcel:
    """One in-flight work migration, tracked from take-off to landing."""

    src: int
    dst: int
    epoch: int
    ranges: tuple[Range, ...]
    delivered: bool = False
    consumed: bool = False
    pooled: bool = False
    drops: int = 0

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.epoch)


@dataclass
class _BudgetedFault:
    """A drop/delay fault with its remaining budget."""

    spec: Any
    remaining: int


class FaultController:
    """Injects one :class:`FaultPlan` and tracks recovery state."""

    def __init__(self, session: "LoopSession", plan: FaultPlan) -> None:
        plan.validate_for(session.n)
        self.session = session
        self.plan = plan
        self.rec = session.recorder
        self._rng = plan.rng()
        # -- ground truth vs detected state --------------------------------
        self.crashed: set[int] = set()
        self.crash_times: dict[int, float] = {}
        self.declared: set[int] = set()
        self.fenced: set[int] = set()
        self._assignment_reclaimed: set[int] = set()
        # -- ledger and pool ------------------------------------------------
        self.parcels: dict[tuple[int, int, int], WorkParcel] = {}
        self.pool: list[Range] = []
        # -- counters for LoopRunStats --------------------------------------
        self.retries = 0
        self.dropped_messages = 0
        self.delayed_messages = 0
        self.reclaimed_iterations = 0
        self.salvaged_iterations = 0
        self.slowdowns_applied = 0
        self.slowdowns_skipped = 0
        self._drop_budgets = [
            _BudgetedFault(spec=f, remaining=f.max_drops)
            for f in plan.drops]
        self._delay_budgets = [
            _BudgetedFault(spec=f, remaining=f.max_delays)
            for f in plan.delays]

    # -- installation --------------------------------------------------------
    def install(self) -> None:
        """Hook the bus and schedule the plan's timed faults."""
        env = self.session.env
        network = self.session.vm.network
        network.fault_hook = self._on_transmit
        network.on_drop = self._on_drop
        self._injectors: list = []
        for crash in self.plan.crashes:
            self._injectors.append(
                env.process(self._crash_at(crash.node, crash.time),
                            name=f"fault:crash{crash.node}"))
        for slow in self.plan.slowdowns:
            self._injectors.append(
                env.process(self._slow_at(slow.node, slow.time,
                                          slow.pause_seconds),
                            name=f"fault:slow{slow.node}"))

    def uninstall(self) -> None:
        """Detach the bus hooks and stop not-yet-fired injectors.

        Called by the executor at stage end so a later stage on the same
        environment (``run_application``) is not haunted by this stage's
        pending crash timers or drop hooks.
        """
        network = self.session.vm.network
        if network.fault_hook is self._on_transmit:
            network.fault_hook = None
        if network.on_drop is self._on_drop:
            network.on_drop = None
        for proc in getattr(self, "_injectors", []):
            if proc.is_alive:
                proc.stop()

    def _crash_at(self, node: int, time: float
                  ) -> Generator[Event, None, None]:
        env = self.session.env
        if time > env.now:
            yield env.timeout(time - env.now)
        self.crash(node)
        return
        yield  # pragma: no cover - keeps this a generator for time == now

    def _slow_at(self, node: int, time: float, pause: float
                 ) -> Generator[Event, None, None]:
        env = self.session.env
        if time > env.now:
            yield env.timeout(time - env.now)
        runtime = self.session.nodes.get(node)
        if (runtime is not None and node not in self.crashed
                and runtime.steal(pause)):
            self.slowdowns_applied += 1
        else:
            self.slowdowns_skipped += 1
        return
        yield  # pragma: no cover

    # -- injection: crashes ---------------------------------------------------
    def crash(self, node: int) -> None:
        """Fail-stop ``node`` now (injected crash or fencing)."""
        if node in self.crashed:
            return
        env = self.session.env
        self.crashed.add(node)
        self.crash_times[node] = env.now
        self.rec.event("crash", track=f"node{node}")
        runtime = self.session.nodes.get(node)
        if runtime is not None:
            runtime.more_work = False
            runtime.computing = False
            if runtime.finish_time is None:
                runtime.finish_time = env.now
            self.session.vm.inbox[node].notify = None
            self.session.vm.inbox[node].cancel_all()
            proc = runtime.proc
            if proc is not None and proc.is_alive \
                    and proc is not env.active_process:
                proc.stop()

    def is_crashed(self, node: int) -> bool:
        return node in self.crashed

    # -- injection: messages --------------------------------------------------
    @staticmethod
    def _tag_value(item: Any) -> Optional[str]:
        if isinstance(item, Message):
            return item.tag.value
        return None

    def _on_transmit(self, src: int, dst: int, nbytes: int,
                     item: Any) -> "None | str | float":
        """Bus fault hook: decide each non-local transfer's fate."""
        if src in self.crashed:
            # A dead host emits nothing; detached helper processes that
            # outlived their node are silenced here.
            return "drop"
        now = self.session.env.now
        tag = self._tag_value(item)
        for budgeted in self._drop_budgets:
            if (budgeted.remaining > 0
                    and budgeted.spec.matches(now, src, dst, tag)
                    and self._rng.random() < budgeted.spec.probability):
                budgeted.remaining -= 1
                return "drop"
        extra = 0.0
        for budgeted in self._delay_budgets:
            if (budgeted.remaining > 0
                    and budgeted.spec.matches(now, src, dst, tag)
                    and self._rng.random() < budgeted.spec.probability):
                budgeted.remaining -= 1
                extra += budgeted.spec.extra_seconds
        if extra > 0:
            self.delayed_messages += 1
            return extra
        return None

    def _on_drop(self, src: int, dst: int, item: Any) -> None:
        self.dropped_messages += 1
        self.rec.event("message_drop", track="network", src=src, dst=dst,
                       tag=self._tag_value(item) or "")
        if isinstance(item, WorkMsg) and item.ranges:
            parcel = self.parcels.get((src, dst, item.epoch))
            if parcel is not None:
                parcel.drops += 1

    # -- failure declaration (detection) --------------------------------------
    def is_declared_dead(self, node: int) -> bool:
        return node in self.declared

    def declare_dead(self, node: int, by: int) -> None:
        """Record that ``by`` gave up on ``node`` (retries exhausted).

        Fences the victim if it is in fact alive, then reclaims its
        unfinished assignment and every unconsumed parcel it touches
        into the orphan pool.  Idempotent.
        """
        if node == self.session.lb_host and node not in self.crashed:
            # The model assumes the master is reliable (it holds this
            # registry and gathers results): suspecting it is always a
            # false positive, so the declaration is ignored — the waiter
            # stops waiting and the retry machinery reconciles later.
            return
        if node in self.declared:
            return
        self.declared.add(node)
        fenced = node not in self.crashed
        self.rec.event("declare_dead", track=f"node{node}", by=by,
                       fenced=fenced)
        if fenced:
            self.fenced.add(node)
            self.rec.event("fence", track=f"node{node}")
            self.crash(node)
        self._reclaim_node(node)
        self.session.stats.declared_dead = tuple(sorted(self.declared))

    def _reclaim_node(self, node: int) -> None:
        if node not in self._assignment_reclaimed:
            self._assignment_reclaimed.add(node)
            runtime = self.session.nodes.get(node)
            if runtime is not None:
                ranges = runtime.assignment.take_all()
                self.pool_ranges(ranges)
        for parcel in self.parcels.values():
            if parcel.consumed or parcel.pooled:
                continue
            if parcel.src == node or parcel.dst == node:
                parcel.pooled = True
                self.pool_ranges(parcel.ranges)

    def pool_ranges(self, ranges) -> None:
        live = [r for r in ranges if r[1] > r[0]]
        if live:
            self.pool.extend(live)
            self.reclaimed_iterations += sum(e - s for s, e in live)

    # -- work ledger -----------------------------------------------------------
    def register_parcel(self, src: int, dst: int, epoch: int,
                        ranges) -> None:
        """Record a migration at take-off (or re-arm it on resend)."""
        key = (src, dst, epoch)
        if key not in self.parcels:
            self.parcels[key] = WorkParcel(src=src, dst=dst, epoch=epoch,
                                           ranges=tuple(ranges))

    def try_consume(self, src: int, dst: int, epoch: int
                    ) -> Optional[tuple[Range, ...]]:
        """Claim a delivered parcel's ranges exactly once.

        Returns ``None`` for duplicates (a resend raced the original)
        and for parcels already swept into the pool — the caller must
        then discard the message.  Unregistered (pre-fault-era or
        unsolicited) keys return an empty tuple: the caller keeps the
        message's own ranges and we record the consumption.
        """
        key = (src, dst, epoch)
        parcel = self.parcels.get(key)
        if parcel is None:
            self.parcels[key] = WorkParcel(src=src, dst=dst, epoch=epoch,
                                           ranges=(), delivered=True,
                                           consumed=True)
            return ()
        if parcel.consumed or parcel.pooled:
            return None
        parcel.delivered = True
        parcel.consumed = True
        return parcel.ranges

    def parcel_state(self, src: int, dst: int, epoch: int
                     ) -> Optional[WorkParcel]:
        return self.parcels.get((src, dst, epoch))

    # -- orphan pool -----------------------------------------------------------
    def claim_orphans(self) -> list[Range]:
        """Hand the entire pool to the caller (a syncing survivor)."""
        claimed, self.pool = self.pool, []
        return claimed

    @property
    def has_orphans(self) -> bool:
        return bool(self.pool)

    def note_retry(self) -> None:
        self.retries += 1

    # -- end-of-run salvage ----------------------------------------------------
    def sweep_orphans(self) -> list[Range]:
        """Collect every range no live protocol participant will run.

        Called by the executor after all node processes have finished:
        dead nodes' assignments not yet reclaimed, unconsumed WORK
        messages sitting in the mailboxes of dead or retired nodes, and
        finally *every* remaining unconsumed parcel — at this point no
        protocol process will ever run again, so a parcel that is
        neither consumed nor pooled is definitively lost whether it was
        dropped, stranded in a mailbox, or still in flight on the bus.
        """
        for node in sorted(self.crashed):
            self._reclaim_node(node)
        for inbox in self.session.vm.inbox:
            for item in list(inbox.items):
                if isinstance(item, WorkMsg) and item.ranges:
                    ranges = self.try_consume(item.src, item.dst, item.epoch)
                    if ranges is None:
                        continue
                    self.pool_ranges(ranges if ranges else item.ranges)
        for parcel in self.parcels.values():
            if not parcel.consumed and not parcel.pooled:
                parcel.pooled = True
                self.pool_ranges(parcel.ranges)
        return self.claim_orphans()

    def survivors(self) -> list[int]:
        return [i for i in range(self.session.n) if i not in self.crashed]
