"""Fault injection and robustness layer for the DLB runtime.

The paper's premise is a multi-user NOW — an environment where nodes
disappear and messages get lost.  This package adds a *modeled* version
of that unreliability on top of the benign external-load model:

* :mod:`repro.faults.plan` — declarative, seeded fault plans (node
  crash, node slowdown/freeze, message drop, message delay);
* :mod:`repro.faults.controller` — the per-run injector, failure
  registry, work ledger and orphan pool that the hardened runtime in
  :mod:`repro.runtime` recovers through.

Usage::

    from repro import ClusterSpec, run_loop
    from repro.faults import FaultPlan

    plan = FaultPlan.single_crash(node=2, time=0.5)
    stats = run_loop(loop, cluster, "GDDLB", fault_plan=plan)
    assert stats.crashed_nodes == (2,)   # and coverage is still exact

The fault taxonomy, detection/retry/reclaim semantics, and how they map
onto the paper's assumptions are documented in ``docs/FAULT_MODEL.md``.
"""

from .controller import FaultController, WorkParcel
from .liveness import HeartbeatMonitor
from .plan import (
    CrashFault,
    FaultPlan,
    MessageDelayFault,
    MessageDropFault,
    SlowdownFault,
)

__all__ = [
    "CrashFault",
    "FaultController",
    "FaultPlan",
    "HeartbeatMonitor",
    "MessageDelayFault",
    "MessageDropFault",
    "SlowdownFault",
    "WorkParcel",
]
