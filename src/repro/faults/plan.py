"""Declarative fault plans: *what* goes wrong, *when*, deterministically.

A :class:`FaultPlan` is a frozen description of the faults one run will
experience — node crashes, node slowdowns/freezes, message drops and
message delays — plus a seed that fixes every probabilistic choice.  The
same plan against the same cluster seed reproduces the same run event
for event, which is what makes the robustness tests in ``tests/faults``
deterministic.

The taxonomy, the injection points and the recovery semantics are
documented in ``docs/FAULT_MODEL.md``; the runtime mechanics live in
:mod:`repro.faults.controller`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CrashFault",
    "SlowdownFault",
    "MessageDropFault",
    "MessageDelayFault",
    "FaultPlan",
]

#: The master processor; the fault model assumes it is reliable (it holds
#: the recovery registry and gathers results — see docs/FAULT_MODEL.md).
RELIABLE_MASTER = 0


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop crash: ``node`` halts permanently at ``time`` seconds.

    The victim's process is stopped wherever it is (mid-iteration, mid-
    send, mid-sync); it sends and receives nothing afterwards.  Its
    unfinished iteration ranges become reclaimable orphans.
    """

    node: int
    time: float

    def __post_init__(self) -> None:
        if self.node == RELIABLE_MASTER:
            raise ValueError(
                "the fault model assumes the master (node 0) is reliable; "
                "crashing it is unrecoverable by construction")
        if self.time < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True)
class SlowdownFault:
    """Transient slowdown/freeze: ``node`` computes at ``1/factor`` of
    its normal effective speed over ``[time, time + duration]``.

    ``factor=inf`` (the default) is a full freeze.  Injected as a compute
    pause of ``duration * (1 - 1/factor)`` seconds at ``time`` — the work
    completed over the window is exactly what a uniform slowdown would
    allow, though its placement within the window is front-loaded.  A
    node that is not computing at ``time`` (it is synchronizing or has
    retired) is unaffected; the attempt is still recorded.
    """

    node: int
    time: float
    duration: float
    factor: float = math.inf

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("slowdown needs time >= 0 and duration > 0")
        if self.factor <= 1.0:
            raise ValueError("slowdown factor must exceed 1")

    @property
    def pause_seconds(self) -> float:
        if math.isinf(self.factor):
            return self.duration
        return self.duration * (1.0 - 1.0 / self.factor)


@dataclass(frozen=True)
class MessageDropFault:
    """Drop messages crossing the bus, transiently and boundedly.

    Every non-local transfer matching the filters is dropped with
    ``probability`` (decided by the plan's seeded RNG), up to
    ``max_drops`` total for this fault.  ``tag`` matches the message's
    wire tag value (e.g. ``"work"``, ``"profile"``); ``src``/``dst``
    restrict endpoints; ``window`` restricts simulated time.

    Keep drop bursts within the retry budget of the run's
    :class:`~repro.runtime.options.FaultToleranceConfig` unless you
    *want* to exercise retry exhaustion and peer fencing.
    """

    probability: float = 1.0
    max_drops: int = 1
    tag: Optional[str] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    window: tuple[float, float] = (0.0, math.inf)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_drops < 1:
            raise ValueError("max_drops must be at least 1")
        if self.window[0] < 0 or self.window[1] < self.window[0]:
            raise ValueError("bad time window")

    def matches(self, now: float, src: int, dst: int,
                tag_value: Optional[str]) -> bool:
        return (self.window[0] <= now <= self.window[1]
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst)
                and (self.tag is None or tag_value is not None
                     and self.tag.lower() == tag_value.lower()))


@dataclass(frozen=True)
class MessageDelayFault:
    """Delay matching messages by ``extra_seconds`` on the wire.

    Same filters as :class:`MessageDropFault`.  Delays model transient
    congestion or routing flaps; they reorder traffic between host pairs
    but never lose it.
    """

    extra_seconds: float
    probability: float = 1.0
    max_delays: int = 1_000_000
    tag: Optional[str] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    window: tuple[float, float] = (0.0, math.inf)

    def __post_init__(self) -> None:
        if self.extra_seconds <= 0:
            raise ValueError("extra_seconds must be positive")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_delays < 1:
            raise ValueError("max_delays must be at least 1")
        if self.window[0] < 0 or self.window[1] < self.window[0]:
            raise ValueError("bad time window")

    def matches(self, now: float, src: int, dst: int,
                tag_value: Optional[str]) -> bool:
        return (self.window[0] <= now <= self.window[1]
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst)
                and (self.tag is None or tag_value is not None
                     and self.tag.lower() == tag_value.lower()))


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule of one run.

    ``seed`` drives every probabilistic decision (drop/delay coin flips)
    through one :class:`random.Random` stream consumed in simulation
    order, so a plan is exactly reproducible against a deterministic run.
    """

    crashes: tuple[CrashFault, ...] = ()
    slowdowns: tuple[SlowdownFault, ...] = ()
    drops: tuple[MessageDropFault, ...] = ()
    delays: tuple[MessageDelayFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        crashed = [c.node for c in self.crashes]
        if len(set(crashed)) != len(crashed):
            raise ValueError("a node can crash at most once")

    @property
    def empty(self) -> bool:
        return not (self.crashes or self.slowdowns or self.drops
                    or self.delays)

    @property
    def crashed_nodes(self) -> tuple[int, ...]:
        return tuple(sorted(c.node for c in self.crashes))

    def validate_for(self, n_processors: int) -> None:
        """Reject plans the fault model cannot absorb on this cluster."""
        for fault in (*self.crashes, *self.slowdowns):
            if not 0 <= fault.node < n_processors:
                raise ValueError(f"fault targets node {fault.node}, but the "
                                 f"cluster has {n_processors} processors")
        if len(self.crashes) >= n_processors:
            raise ValueError("plan crashes every processor; at least one "
                             "survivor is required for graceful degradation")

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    @staticmethod
    def single_crash(node: int, time: float) -> "FaultPlan":
        """The canonical scenario: one node dies mid-loop."""
        return FaultPlan(crashes=(CrashFault(node=node, time=time),))

    @staticmethod
    def random_plan(seed: int, n_processors: int, duration_hint: float,
                    n_crashes: int = 1, n_slowdowns: int = 0,
                    drop_probability: float = 0.0,
                    max_drops: int = 8) -> "FaultPlan":
        """Generate a seeded plan sized to a run of ``duration_hint`` s.

        Crash victims are drawn from ``1..n_processors-1`` (the master is
        reliable), crash times uniformly from the middle 80% of the run.
        """
        if n_crashes >= n_processors:
            raise ValueError("cannot crash every processor")
        rng = random.Random(seed)
        victims = rng.sample(range(1, n_processors), k=min(
            n_crashes + n_slowdowns, n_processors - 1))
        lo, hi = 0.1 * duration_hint, 0.9 * duration_hint
        crashes = tuple(
            CrashFault(node=v, time=rng.uniform(lo, hi))
            for v in victims[:n_crashes])
        slowdowns = tuple(
            SlowdownFault(node=v, time=rng.uniform(lo, hi),
                          duration=rng.uniform(0.05, 0.2) * duration_hint)
            for v in victims[n_crashes:])
        drops = ()
        if drop_probability > 0:
            drops = (MessageDropFault(probability=drop_probability,
                                      max_drops=max_drops),)
        return FaultPlan(crashes=crashes, slowdowns=slowdowns, drops=drops,
                         seed=seed)
