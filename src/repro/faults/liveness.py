"""Socket-transport liveness: ping/pong bookkeeping → PeerDead.

Over real TCP the failure signal of docs/FAULT_MODEL.md has two
sources: the kernel (a reset or EOF on the peer's connection) and
silence.  :class:`HeartbeatMonitor` covers the second — the hub probes
idle peers with PING frames and a peer that stays silent past its
patience is declared dead, feeding the same
:class:`~repro.protocol.events.PeerDead` path the other backends use.

The patience is derived from the run's
:class:`~repro.runtime.options.FaultToleranceConfig` exactly as the
central balancer's pull-based detector: ``liveness_timeout *
(max_retries + 1)`` — the master's time-to-declare.  A PONG (or any
other frame) resets the peer's clock.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.options import FaultToleranceConfig

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Last-seen tracking for a set of socket peers.

    Pure bookkeeping — the caller supplies ``now`` (any monotonic
    clock) and acts on the returned peer lists, so the monitor is
    trivially testable without a network.
    """

    def __init__(self, *, interval: float, patience: float) -> None:
        if interval <= 0 or patience <= 0:
            raise ValueError("interval and patience must be positive")
        #: Seconds of silence before a probe is sent.
        self.interval = interval
        #: Seconds of silence before the peer is declared dead.
        self.patience = patience
        self._last_seen: dict[int, float] = {}
        self._last_probe: dict[int, float] = {}

    @classmethod
    def from_ft(cls, ft: FaultToleranceConfig,
                interval: Optional[float] = None) -> "HeartbeatMonitor":
        """Derive probe cadence and patience from the FT config."""
        patience = ft.liveness_timeout * (ft.max_retries + 1)
        return cls(interval=interval if interval is not None
                   else ft.liveness_timeout, patience=patience)

    # -- membership ------------------------------------------------------
    def watch(self, peer: int, now: float) -> None:
        """Start (or restart) watching ``peer``."""
        self._last_seen[peer] = now
        self._last_probe.pop(peer, None)

    def forget(self, peer: int) -> None:
        """Stop watching ``peer`` (finished, departed, or declared)."""
        self._last_seen.pop(peer, None)
        self._last_probe.pop(peer, None)

    @property
    def watched(self) -> tuple[int, ...]:
        return tuple(sorted(self._last_seen))

    # -- signals ---------------------------------------------------------
    def note_alive(self, peer: int, now: float) -> None:
        """Any frame from ``peer`` is liveness evidence."""
        if peer in self._last_seen:
            self._last_seen[peer] = now
            self._last_probe.pop(peer, None)

    def due_probes(self, now: float) -> list[int]:
        """Peers silent past ``interval`` that deserve a PING now.

        Marks the returned peers as probed, so each silence window
        produces one probe per ``interval`` (not one per poll).
        """
        due = []
        for peer, seen in sorted(self._last_seen.items()):
            anchor = max(seen, self._last_probe.get(peer, seen))
            if now - anchor >= self.interval:
                self._last_probe[peer] = now
                due.append(peer)
        return due

    def overdue(self, now: float) -> list[int]:
        """Peers silent past ``patience`` — declare these dead."""
        return [peer for peer, seen in sorted(self._last_seen.items())
                if now - seen >= self.patience]
