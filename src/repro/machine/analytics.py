"""Closed-form and numeric analytics for the load model.

Useful for calibration and sanity bounds: what is the *expected*
capacity of a processor under the paper's discrete random load, what is
the best any balancer could achieve on a given realization, and how
badly should a static schedule do in expectation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..apps.workload import LoopSpec
from .cluster import ClusterSpec
from .workstation import Workstation

__all__ = [
    "expected_inverse_factor",
    "expected_capacity_rate",
    "ideal_balanced_time",
    "expected_static_slowdown",
]


def expected_inverse_factor(max_load: int) -> float:
    """``E[1 / (l + 1)]`` for ``l`` uniform on ``{0..max_load}``.

    Equals ``H_{m+1} / (m + 1)`` with the harmonic number ``H``.  For
    the paper's ``m_l = 5`` this is ``2.45 / 6 = 0.408...``: a loaded
    workstation delivers ~41% of its nominal speed on average.
    """
    if max_load < 0:
        raise ValueError("max_load must be non-negative")
    m = max_load + 1
    harmonic = sum(1.0 / k for k in range(1, m + 1))
    return harmonic / m


def expected_capacity_rate(cluster: ClusterSpec) -> float:
    """Expected aggregate work rate (base-seconds/second) of a cluster."""
    factor = expected_inverse_factor(cluster.max_load)
    return factor * sum(cluster.speeds)


def ideal_balanced_time(loop: LoopSpec,
                        stations: Sequence[Workstation],
                        tolerance: float = 1e-9) -> float:
    """The omniscient-balancer lower bound for one load realization.

    The earliest time ``T`` with ``sum_i capacity_i(0, T) == W`` — no
    real strategy can beat it (it ignores communication and the
    atomicity of iterations).  Solved by bisection on the monotone
    aggregate capacity.
    """
    total = loop.total_work
    if total <= 0:
        return 0.0

    def capacity(t: float) -> float:
        return sum(ws.capacity(0.0, t) for ws in stations)

    hi = total / sum(ws.speed for ws in stations)
    while capacity(hi) < total:
        hi *= 2.0
    lo = 0.0
    while hi - lo > tolerance * max(hi, 1.0):
        mid = 0.5 * (lo + hi)
        if capacity(mid) < total:
            lo = mid
        else:
            hi = mid
    return hi


def expected_static_slowdown(n_processors: int, max_load: int,
                             n_windows: int = 1,
                             n_samples: int = 20_000,
                             seed: Optional[int] = 0) -> float:
    """Monte-Carlo estimate of ``E[max_i mu_i] / E_harmonic``: how much
    slower the static equal partition is than the balanced ideal, when
    each processor averages ``n_windows`` iid load draws.

    With one window and ``m_l = 5`` on 4 processors this is ~2x — the
    headroom the DLB schemes compete for.
    """
    if n_processors < 1 or n_windows < 1:
        raise ValueError("bad arguments")
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, max_load + 1,
                          size=(n_samples, n_processors, n_windows))
    # Effective load over the run of each processor: harmonic mean of
    # the per-window factors (time-weighted, equal windows).
    inv = 1.0 / (levels + 1.0)
    mu = n_windows / inv.sum(axis=2)          # per processor
    static = mu.max(axis=1)                   # slowest processor rules
    balanced = n_processors / (1.0 / mu).sum(axis=1)
    return float(np.mean(static / balanced))
