"""Closed-form and numeric analytics for the load model.

Useful for calibration and sanity bounds: what is the *expected*
capacity of a processor under the paper's discrete random load, what is
the best any balancer could achieve on a given realization, and how
badly should a static schedule do in expectation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..apps.workload import LoopSpec
from ..network.topology import Topology
from .cluster import ClusterSpec
from .workstation import Workstation

__all__ = [
    "expected_inverse_factor",
    "expected_capacity_rate",
    "ideal_balanced_time",
    "expected_static_slowdown",
    "diffusion_convergence_rate",
    "diffusion_sweep_bound",
]


def expected_inverse_factor(max_load: int) -> float:
    """``E[1 / (l + 1)]`` for ``l`` uniform on ``{0..max_load}``.

    Equals ``H_{m+1} / (m + 1)`` with the harmonic number ``H``.  For
    the paper's ``m_l = 5`` this is ``2.45 / 6 = 0.408...``: a loaded
    workstation delivers ~41% of its nominal speed on average.
    """
    if max_load < 0:
        raise ValueError("max_load must be non-negative")
    m = max_load + 1
    harmonic = sum(1.0 / k for k in range(1, m + 1))
    return harmonic / m


def expected_capacity_rate(cluster: ClusterSpec) -> float:
    """Expected aggregate work rate (base-seconds/second) of a cluster."""
    factor = expected_inverse_factor(cluster.max_load)
    return factor * sum(cluster.speeds)


def ideal_balanced_time(loop: LoopSpec,
                        stations: Sequence[Workstation],
                        tolerance: float = 1e-9) -> float:
    """The omniscient-balancer lower bound for one load realization.

    The earliest time ``T`` with ``sum_i capacity_i(0, T) == W`` — no
    real strategy can beat it (it ignores communication and the
    atomicity of iterations).  Solved by bisection on the monotone
    aggregate capacity.
    """
    total = loop.total_work
    if total <= 0:
        return 0.0

    def capacity(t: float) -> float:
        return sum(ws.capacity(0.0, t) for ws in stations)

    hi = total / sum(ws.speed for ws in stations)
    while capacity(hi) < total:
        hi *= 2.0
    lo = 0.0
    while hi - lo > tolerance * max(hi, 1.0):
        mid = 0.5 * (lo + hi)
        if capacity(mid) < total:
            lo = mid
        else:
            hi = mid
    return hi


def expected_static_slowdown(n_processors: int, max_load: int,
                             n_windows: int = 1,
                             n_samples: int = 20_000,
                             seed: Optional[int] = 0) -> float:
    """Monte-Carlo estimate of ``E[max_i mu_i] / E_harmonic``: how much
    slower the static equal partition is than the balanced ideal, when
    each processor averages ``n_windows`` iid load draws.

    With one window and ``m_l = 5`` on 4 processors this is ~2x — the
    headroom the DLB schemes compete for.
    """
    if n_processors < 1 or n_windows < 1:
        raise ValueError("bad arguments")
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, max_load + 1,
                          size=(n_samples, n_processors, n_windows))
    # Effective load over the run of each processor: harmonic mean of
    # the per-window factors (time-weighted, equal windows).
    inv = 1.0 / (levels + 1.0)
    mu = n_windows / inv.sum(axis=2)          # per processor
    static = mu.max(axis=1)                   # slowest processor rules
    balanced = n_processors / (1.0 / mu).sum(axis=1)
    return float(np.mean(static / balanced))


def diffusion_convergence_rate(topology: Topology) -> float:
    """The geometric contraction factor ``gamma`` of first-order
    diffusion on a topology.

    With ``alpha = 1 / (1 + max_degree)`` the diffusion matrix is
    ``M = I - alpha * L`` (``L`` the graph Laplacian).  Its eigenvalue 1
    carries the conserved total load; every other eigenvalue has
    magnitude ``< 1`` on a connected graph, and the imbalance contracts
    by ``gamma = max |eigenvalue != 1|`` per sweep (Cybenko; Demirel &
    Sbalzarini use the same spectrum for their convergence bound).
    """
    alpha = 1.0 / (1.0 + topology.max_degree)
    lap = np.asarray(topology.laplacian(), dtype=float)
    eig = np.linalg.eigvalsh(np.eye(topology.n_hosts) - alpha * lap)
    # eigvalsh sorts ascending; the conserved eigenvalue 1 is the last.
    if topology.n_hosts == 1:
        return 0.0
    return float(max(abs(eig[0]), abs(eig[-2])))


def diffusion_sweep_bound(topology: Topology, initial_imbalance: float,
                          quantum: float) -> int:
    """Sweeps until every diffusion flow quantizes to zero.

    The imbalance (max deviation from the mean load) decays at least
    geometrically at rate :func:`diffusion_convergence_rate`; once it
    falls below ``quantum / (2 * alpha)`` no edge flow reaches a whole
    transfer quantum and the indivisible-load scheme stops moving work.
    Returns the smallest sweep count guaranteeing that, i.e.
    ``ceil(log(threshold / imbalance) / log(gamma))`` — the bound the
    convergence property test checks against.
    """
    if initial_imbalance < 0 or quantum <= 0:
        raise ValueError("imbalance must be >= 0 and quantum > 0")
    alpha = 1.0 / (1.0 + topology.max_degree)
    threshold = quantum / (2.0 * alpha)
    if initial_imbalance <= threshold:
        return 0
    gamma = diffusion_convergence_rate(topology)
    if gamma <= 0.0:
        return 1
    return int(np.ceil(np.log(threshold / initial_imbalance)
                       / np.log(gamma)))
