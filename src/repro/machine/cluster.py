"""Cluster construction: groups of workstations with seeded load.

:class:`ClusterSpec` is the declarative description used by experiment
configs ("16 homogeneous SPARC LX's with m_l = 5, t_l = 2 s, seed 7");
:meth:`ClusterSpec.build` instantiates fresh :class:`Workstation` objects
with *independent* per-processor load streams derived from the spec seed,
so the event simulation and the analytical model can each build an
identical cluster and see identical load realizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .load import ConstantLoad, DiscreteRandomLoad, LoadFunction, TraceLoad
from .workstation import Workstation

__all__ = ["ClusterSpec", "build_groups"]


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a network of workstations.

    Attributes
    ----------
    speeds:
        One relative speed per processor; ``len(speeds)`` is ``P``.
    max_load:
        ``m_l`` for the discrete random load (paper experiments: 5).
        ``0`` means dedicated machines (no external load).
    persistence:
        ``t_l`` in seconds.
    seed:
        Master seed; per-processor load seeds are spawned from it so the
        streams are independent yet reproducible.
    load_traces:
        Optional explicit level traces (one per processor) overriding the
        random generator — used by tests and adversarial scenarios.
    """

    speeds: tuple[float, ...]
    max_load: int = 5
    persistence: float = 2.0
    seed: int = 0
    load_traces: Optional[tuple[tuple[int, ...], ...]] = field(default=None)

    def __post_init__(self) -> None:
        if len(self.speeds) < 1:
            raise ValueError("cluster needs at least one processor")
        if any(s <= 0 for s in self.speeds):
            raise ValueError("speeds must be positive")
        if self.max_load < 0:
            raise ValueError("max_load must be non-negative")
        if self.persistence <= 0:
            raise ValueError("persistence must be positive")
        if (self.load_traces is not None
                and len(self.load_traces) != len(self.speeds)):
            raise ValueError("need one load trace per processor")

    @property
    def n_processors(self) -> int:
        return len(self.speeds)

    @staticmethod
    def homogeneous(n: int, speed: float = 1.0, max_load: int = 5,
                    persistence: float = 2.0, seed: int = 0) -> "ClusterSpec":
        """The paper's setting: ``n`` identical workstations."""
        return ClusterSpec(speeds=(float(speed),) * n, max_load=max_load,
                           persistence=persistence, seed=seed)

    @staticmethod
    def heterogeneous(speeds: Sequence[float], max_load: int = 5,
                      persistence: float = 2.0, seed: int = 0) -> "ClusterSpec":
        return ClusterSpec(speeds=tuple(float(s) for s in speeds),
                           max_load=max_load, persistence=persistence,
                           seed=seed)

    def build(self) -> list[Workstation]:
        """Instantiate the workstations with fresh, seeded load streams."""
        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(self.n_processors)
        stations = []
        for i, speed in enumerate(self.speeds):
            if self.load_traces is not None:
                load: LoadFunction = TraceLoad(self.load_traces[i],
                                               persistence=self.persistence)
            elif self.max_load == 0:
                load = ConstantLoad(0, persistence=self.persistence)
            else:
                load = DiscreteRandomLoad(
                    max_load=self.max_load, persistence=self.persistence,
                    seed=int(children[i].generate_state(1)[0]))
            stations.append(Workstation(index=i, speed=speed, load=load))
        return stations

    def reseeded(self, seed: int) -> "ClusterSpec":
        """Same cluster, different load realization (for multi-seed runs)."""
        return ClusterSpec(speeds=self.speeds, max_load=self.max_load,
                           persistence=self.persistence, seed=seed,
                           load_traces=self.load_traces)


def build_groups(n_processors: int, group_size: int,
                 formation: str = "block",
                 seed: int = 0) -> list[list[int]]:
    """Partition processors into fixed groups of size ``K`` (paper §3.5).

    The paper names three formation rules and evaluates K-block; all
    three are implemented for the group-formation ablation:

    * ``"block"`` — contiguous K-blocks (also what "K nearest
      neighbors" degenerates to when proximity is index order);
    * ``"interleaved"`` — round-robin assignment (group ``i % G``),
      i.e. a CYCLIC partition of the processors;
    * ``"random"`` — a seeded random permutation cut into K-blocks.

    The last group absorbs the remainder when ``group_size`` does not
    divide ``n_processors``; a trailing singleton is merged into the
    previous group (a lone processor can never rebalance).
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if formation not in ("block", "interleaved", "random"):
        raise ValueError(f"unknown group formation {formation!r}")
    if group_size > n_processors:
        group_size = n_processors

    if formation == "interleaved":
        n_groups = max(1, n_processors // group_size)
        groups = [list(range(g, n_processors, n_groups))
                  for g in range(n_groups)]
        groups = [g for g in groups if g]
    else:
        order = list(range(n_processors))
        if formation == "random":
            rng = np.random.default_rng(seed)
            order = [int(i) for i in rng.permutation(n_processors)]
        groups = []
        start = 0
        while start < n_processors:
            end = min(start + group_size, n_processors)
            groups.append(sorted(order[start:end]))
            start = end
    if len(groups) > 1 and len(groups[-1]) == 1:
        groups[-2].extend(groups[-1])
        groups[-2].sort()
        groups.pop()
    return groups
