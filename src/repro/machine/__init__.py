"""Workstation and external-load model (substrate S2, paper §4.1)."""

from .analytics import (
    expected_capacity_rate,
    expected_inverse_factor,
    expected_static_slowdown,
    ideal_balanced_time,
)
from .cluster import ClusterSpec, build_groups
from .load import ConstantLoad, DiscreteRandomLoad, LoadFunction, TraceLoad
from .workstation import Workstation

__all__ = [
    "ClusterSpec",
    "ConstantLoad",
    "DiscreteRandomLoad",
    "LoadFunction",
    "TraceLoad",
    "Workstation",
    "build_groups",
    "expected_capacity_rate",
    "expected_inverse_factor",
    "expected_static_slowdown",
    "ideal_balanced_time",
]
