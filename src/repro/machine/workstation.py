"""Workstations: relative speed plus an external load function (§4.1).

A :class:`Workstation` is pure "time math" — it answers how much work the
processor can complete in an interval and how long a given amount of work
takes, given its speed ``S_i`` and load ``l_i(t)``.  Both the event
simulation (actual runs) and the analytical model (predicted runs) consume
the same object, so predictions and measurements disagree only through
protocol effects the model abstracts away, exactly as in the paper.

Work is measured in *base-processor seconds*: an iteration whose time per
iteration is ``T`` (on the speed-1 base processor) is ``T`` units of work,
and takes ``T * (l + 1) / S`` wall seconds under load ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .load import ConstantLoad, LoadFunction

__all__ = ["Workstation"]


@dataclass
class Workstation:
    """A processor in the network of workstations.

    Attributes
    ----------
    index:
        Position in the cluster (0-based); index 0 hosts the master /
        central load balancer in the centralized schemes.
    speed:
        ``S_i`` — performance ratio w.r.t. the base processor.
    load:
        External load function ``l_i``; defaults to no load.
    name:
        Human-readable label used in logs and statistics.
    """

    index: int
    speed: float = 1.0
    load: LoadFunction = field(default_factory=ConstantLoad)
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        if self.name is None:
            self.name = f"ws{self.index}"

    # -- capability queries -------------------------------------------------
    def effective_speed(self, t: float) -> float:
        """Instantaneous effective speed ``S / (l(t) + 1)``."""
        return self.speed / (self.load.level(t) + 1.0)

    def capacity(self, t0: float, t1: float) -> float:
        """Work (base-processor seconds) achievable during ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        return self.speed * (self.load.integral(t1) - self.load.integral(t0))

    def time_to_complete(self, t0: float, work: float) -> float:
        """Absolute time at which ``work`` started at ``t0`` finishes."""
        if work < 0:
            raise ValueError("work must be non-negative")
        if work == 0:
            return t0
        target = self.load.integral(t0) + work / self.speed
        return self.load.inverse_integral(target)

    def work_done(self, t0: float, t1: float) -> float:
        """Alias of :meth:`capacity`: work completed if busy throughout."""
        return self.capacity(t0, t1)

    def effective_load(self, t0: float, t1: float) -> float:
        """The paper's ``mu_i`` over ``[t0, t1]`` (so speed = ``S_i/mu_i``)."""
        return self.load.effective_load(t0, t1)

    def average_effective_speed(self, t0: float, t1: float) -> float:
        """``S_i / mu_i(t0, t1)`` — the §4.2 performance metric."""
        return self.speed / self.effective_load(t0, t1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workstation({self.name}, S={self.speed})"
