"""External load functions (paper §4.1, Figure 2).

The paper models multi-user interference as a *discrete random load*: each
processor ``i`` has an independent load function ``l_i`` that holds an
integer level drawn uniformly from ``{0, ..., m_l}`` for a *duration of
persistence* ``t_l`` before the next draw.  A processor of speed ``S``
under load level ``l`` delivers an effective speed ``S / (l + 1)``.

The central quantity everything else consumes is the *inverse-load
integral*::

    F(t) = integral_0^t  dt' / (l(t') + 1)

so that the work (in base-processor seconds) a processor can perform in
``[t0, t1]`` is ``S * (F(t1) - F(t0))``, and the paper's *effective load*
``mu`` over a window is ``(t1 - t0) / (F(t1) - F(t0))``.  ``F`` is
piecewise linear; we keep a prefix sum of per-window inverse factors so
both ``F`` and its inverse are O(log W) with vectorized extension.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["LoadFunction", "DiscreteRandomLoad", "ConstantLoad", "TraceLoad"]


class LoadFunction:
    """Piecewise-constant load over fixed-width persistence windows.

    Subclasses supply window levels through :meth:`_generate`; this base
    class implements the integral machinery.  Window ``k`` covers
    ``[k * persistence, (k+1) * persistence)``.
    """

    def __init__(self, persistence: float) -> None:
        if persistence <= 0:
            raise ValueError("persistence must be positive")
        self.persistence = float(persistence)
        self._levels = np.empty(0, dtype=np.float64)
        # _cum[k] = sum_{j<k} 1/(levels[j]+1); len == len(_levels)+1
        self._cum = np.zeros(1, dtype=np.float64)

    # -- window generation ------------------------------------------------
    def _generate(self, count: int) -> np.ndarray:
        """Return the next ``count`` window levels (subclass hook)."""
        raise NotImplementedError

    def _ensure(self, k: int) -> None:
        """Ensure window indices ``0..k`` exist."""
        need = k + 1 - len(self._levels)
        if need <= 0:
            return
        grow = max(need, len(self._levels), 64)
        new = np.asarray(self._generate(grow), dtype=np.float64)
        if new.shape != (grow,):
            raise ValueError("_generate returned wrong shape")
        if (new < 0).any():
            raise ValueError("load levels must be non-negative")
        self._levels = np.concatenate([self._levels, new])
        self._cum = np.concatenate(
            [self._cum, self._cum[-1] + np.cumsum(1.0 / (new + 1.0))])

    # -- queries ------------------------------------------------------------
    def level(self, t: float) -> float:
        """Load level ``l(t)`` at time ``t >= 0``."""
        if t < 0:
            raise ValueError("time must be non-negative")
        k = int(t // self.persistence)
        self._ensure(k)
        return float(self._levels[k])

    def window_level(self, k: int) -> float:
        """Load level during persistence window ``k`` (0-based)."""
        if k < 0:
            raise ValueError("window index must be non-negative")
        self._ensure(k)
        return float(self._levels[k])

    def integral(self, t: float) -> float:
        """``F(t) = integral_0^t dt' / (l(t') + 1)``."""
        if t < 0:
            raise ValueError("time must be non-negative")
        if t == 0:
            return 0.0
        k = int(t // self.persistence)
        self._ensure(k)
        frac = t - k * self.persistence
        return (self._cum[k] * self.persistence
                + frac / (self._levels[k] + 1.0))

    def inverse_integral(self, target: float) -> float:
        """Return the time ``t`` with ``F(t) == target`` (F is increasing)."""
        if target < 0:
            raise ValueError("target must be non-negative")
        if target == 0:
            return 0.0
        # Grow windows until the cumulative integral covers the target.
        while self._cum[-1] * self.persistence < target:
            self._ensure(2 * max(len(self._levels), 64))
        scaled = target / self.persistence
        k = int(np.searchsorted(self._cum, scaled, side="right") - 1)
        k = min(max(k, 0), len(self._levels) - 1)
        remainder = target - self._cum[k] * self.persistence
        return k * self.persistence + remainder * (self._levels[k] + 1.0)

    def effective_load(self, t0: float, t1: float) -> float:
        """The paper's ``mu`` over ``[t0, t1]``: mean of ``l+1`` weighted so
        that effective speed is ``S / mu`` (harmonic over elapsed time)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return float(self.level(t0) + 1)
        area = self.integral(t1) - self.integral(t0)
        return (t1 - t0) / area

    def effective_load_windows(self, a: int, b: int) -> float:
        """Paper §4.2 discrete form: ``(b-a+1) / sum_{k=a}^{b} 1/(l_k+1)``."""
        if b < a:
            raise ValueError("b must be >= a")
        self._ensure(b)
        inv = 1.0 / (self._levels[a:b + 1] + 1.0)
        return (b - a + 1) / float(inv.sum())

    def mean_inverse_factor(self) -> float:
        """``E[1/(l+1)]`` over the generated prefix (statistical summary)."""
        self._ensure(0)
        return float((1.0 / (self._levels + 1.0)).mean())


class DiscreteRandomLoad(LoadFunction):
    """The paper's load generator: uniform integer levels in ``[0, m_l]``.

    Parameters
    ----------
    max_load:
        ``m_l`` — the paper's experiments use 5.
    persistence:
        ``t_l`` — the duration each level persists, in seconds.  A small
        value is a rapidly-changing load, a large one a stable load.
    seed:
        Seed for the per-processor generator; runs are reproducible.
    """

    def __init__(self, max_load: int = 5, persistence: float = 2.0,
                 seed: Optional[int] = None) -> None:
        if max_load < 0:
            raise ValueError("max_load must be non-negative")
        super().__init__(persistence)
        self.max_load = int(max_load)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def _generate(self, count: int) -> np.ndarray:
        return self._rng.integers(0, self.max_load + 1, size=count,
                                  dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DiscreteRandomLoad(max_load={self.max_load}, "
                f"persistence={self.persistence}, seed={self.seed})")


class ConstantLoad(LoadFunction):
    """A fixed load level — no-load baselines, tests, and model forecasts.

    The level may be fractional: the run-time decision process forecasts
    each processor's future load as its *measured* effective load
    ``mu - 1``, which is rarely an integer.
    """

    def __init__(self, level: float = 0.0, persistence: float = 1.0) -> None:
        if level < 0:
            raise ValueError("level must be non-negative")
        super().__init__(persistence)
        self._level = float(level)

    def _generate(self, count: int) -> np.ndarray:
        return np.full(count, self._level, dtype=np.float64)


class TraceLoad(LoadFunction):
    """Replays an explicit sequence of levels, then repeats the last one.

    Useful for constructing adversarial or hand-crafted load scenarios in
    tests ("group one is heavily loaded, group two idle").
    """

    def __init__(self, levels: Sequence[float], persistence: float = 1.0) -> None:
        if len(levels) == 0:
            raise ValueError("trace must contain at least one level")
        super().__init__(persistence)
        self._trace = [float(x) for x in levels]
        if any(x < 0 for x in self._trace):
            raise ValueError("levels must be non-negative")
        self._pos = 0

    def _generate(self, count: int) -> np.ndarray:
        out = np.empty(count, dtype=np.float64)
        for i in range(count):
            if self._pos < len(self._trace):
                out[i] = self._trace[self._pos]
                self._pos += 1
            else:
                out[i] = self._trace[-1]
        return out
