"""A PVM-flavoured message-passing layer over the simulated bus.

The original system used PVM 3; this module provides the same
programming surface the DLB run-time needs — asynchronous tagged sends,
blocking tag-filtered receives, and non-blocking probes — with every
byte charged to the shared-bus network model.

Usage inside a simulated process::

    yield from vm.send(msg)                 # pays sender-side overhead
    msg = yield vm.recv(me, tag=Tag.PROFILE)  # blocks until a profile
    note = vm.poll(me, tag=Tag.INTERRUPT)     # non-blocking

``vm.inbox[i].notify`` may be set to observe arrivals (the node runtime
uses it to interrupt a computing process when an INTERRUPT lands).
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional

from ..network import NetworkParameters, SharedBusNetwork
from ..simulation import Environment, Event, Mailbox, SlotFilter
from .messages import Message, Tag

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """Message transport between ``n_hosts`` simulated PVM tasks."""

    def __init__(self, env: Environment, n_hosts: int,
                 params: Optional[NetworkParameters] = None,
                 network: Optional[SharedBusNetwork] = None) -> None:
        self.env = env
        self.n_hosts = n_hosts
        self.network = network or SharedBusNetwork(env, n_hosts, params)
        if self.network.n_hosts != n_hosts:
            raise ValueError("network size does not match host count")
        self.inbox = [Mailbox(env, name=f"inbox{i}") for i in range(n_hosts)]
        self.network.on_deliver = self._on_deliver
        self.sent_by_tag: dict[Tag, int] = {t: 0 for t in Tag}

    def _on_deliver(self, dst: int, item: Message) -> None:
        self.inbox[dst].put(item)

    # -- sending -----------------------------------------------------------
    def send(self, msg: Message) -> Generator[Event, None, Event]:
        """Send ``msg`` (a generator to ``yield from``).

        Completes after the sender-side overhead; returns the delivery
        event (rarely needed — receives are the usual synchronization).
        """
        self.sent_by_tag[msg.tag] = self.sent_by_tag.get(msg.tag, 0) + 1
        delivered = yield from self.network.transmit(
            msg.src, msg.dst, msg.nbytes, msg)
        return delivered

    def multicast(self, msgs: Iterable[Message]
                  ) -> Generator[Event, None, list[Event]]:
        """Send several messages back-to-back from the same host.

        PVM over Ethernet has no hardware multicast: the sends serialize
        at the sender, which is exactly the one-to-all cost of §6.1.
        """
        deliveries = []
        for msg in msgs:
            ev = yield from self.send(msg)
            deliveries.append(ev)
        return deliveries

    # -- receiving ---------------------------------------------------------
    @staticmethod
    def _predicate(tag: Optional[Tag], epoch: Optional[int],
                   match: Optional[Callable[[Message], bool]]
                   ) -> Optional[Callable[[Message], bool]]:
        if tag is None and epoch is None and match is None:
            return None
        # A structured filter instead of a closure: the slotted mailbox
        # resolves (tag, epoch) to one bucket in O(1).
        return SlotFilter(tag, epoch, match)

    def recv(self, host: int, tag: Optional[Tag] = None,
             epoch: Optional[int] = None,
             match: Optional[Callable[[Message], bool]] = None) -> Event:
        """Event firing with the next message for ``host`` matching filters."""
        return self.inbox[host].get(self._predicate(tag, epoch, match))

    def poll(self, host: int, tag: Optional[Tag] = None,
             epoch: Optional[int] = None,
             match: Optional[Callable[[Message], bool]] = None
             ) -> Optional[Message]:
        """Non-blocking receive; ``None`` when nothing matches (pvm_probe)."""
        return self.inbox[host].take(self._predicate(tag, epoch, match))

    def drain(self, host: int, tag: Optional[Tag] = None,
              epoch: Optional[int] = None) -> list[Message]:
        """Remove and return all queued matching messages for ``host``."""
        return self.inbox[host].drain(self._predicate(tag, epoch, None))
