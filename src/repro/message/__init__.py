"""PVM-like message layer (substrate S4)."""

from .frames import (
    FrameDecoder,
    FrameError,
    FrameType,
    decode_frame,
    encode_frame,
    message_from_wire,
    message_to_wire,
)
from .messages import (
    ControlMsg,
    DataMsg,
    EpochStamper,
    InstructionMsg,
    InterruptMsg,
    Message,
    ProfileMsg,
    Tag,
    TransferOrder,
    WorkMsg,
    is_stale,
    stale_predicate,
)
from .pvm import VirtualMachine

__all__ = [
    "ControlMsg",
    "DataMsg",
    "EpochStamper",
    "FrameDecoder",
    "FrameError",
    "FrameType",
    "InstructionMsg",
    "InterruptMsg",
    "Message",
    "ProfileMsg",
    "Tag",
    "TransferOrder",
    "VirtualMachine",
    "WorkMsg",
    "decode_frame",
    "encode_frame",
    "is_stale",
    "message_from_wire",
    "message_to_wire",
    "stale_predicate",
]
