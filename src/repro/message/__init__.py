"""PVM-like message layer (substrate S4)."""

from .messages import (
    ControlMsg,
    DataMsg,
    InstructionMsg,
    InterruptMsg,
    Message,
    ProfileMsg,
    Tag,
    TransferOrder,
    WorkMsg,
)
from .pvm import VirtualMachine

__all__ = [
    "ControlMsg",
    "DataMsg",
    "InstructionMsg",
    "InterruptMsg",
    "Message",
    "ProfileMsg",
    "Tag",
    "TransferOrder",
    "VirtualMachine",
    "WorkMsg",
]
