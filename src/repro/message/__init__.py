"""PVM-like message layer (substrate S4)."""

from .messages import (
    ControlMsg,
    DataMsg,
    EpochStamper,
    InstructionMsg,
    InterruptMsg,
    Message,
    ProfileMsg,
    Tag,
    TransferOrder,
    WorkMsg,
    is_stale,
    stale_predicate,
)
from .pvm import VirtualMachine

__all__ = [
    "ControlMsg",
    "DataMsg",
    "EpochStamper",
    "InstructionMsg",
    "InterruptMsg",
    "Message",
    "ProfileMsg",
    "Tag",
    "TransferOrder",
    "VirtualMachine",
    "WorkMsg",
    "is_stale",
    "stale_predicate",
]
