"""Wire-frame codec for the socket backend (docs/WIRE_PROTOCOL.md).

A frame is the transport unit of the TCP backend: a 4-byte big-endian
length prefix, a 1-byte frame-type tag, and a UTF-8 JSON body.  The
length counts everything after the prefix (type byte + body), so a
reader needs no lookahead::

    0      4      5            4 + length
    +------+------+----------------+
    | len  | type | JSON body      |
    +------+------+----------------+

JSON (not pickle) keeps the protocol language-agnostic and injection-
safe across trust boundaries; bodies are encoded with sorted keys and
compact separators so a given frame has exactly one byte representation
(the examples in docs/WIRE_PROTOCOL.md are asserted byte-for-byte in
``tests/message/test_frames.py``).

:class:`~repro.message.messages.Message` payloads ride in ``MSG``
frames: :func:`message_to_wire` flattens a message (epoch stamp
included) into a JSON-clean dict and :func:`message_from_wire` rebuilds
the frozen dataclass.  Unknown body keys are ignored on decode — the
forward-compatibility rule of the wire protocol's versioning policy.
"""

from __future__ import annotations

import json
import struct
from enum import IntEnum
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - imported lazily below to keep
    # this module importable from anywhere in the package (the policy
    # and options modules sit above ``message`` in the import order).
    from ..core.policy import DlbPolicy
    from ..runtime.options import FaultToleranceConfig

from .messages import (
    ControlMsg,
    DataMsg,
    InstructionMsg,
    InterruptMsg,
    Message,
    ProfileMsg,
    TransferOrder,
    WorkMsg,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FrameType",
    "FrameError",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "message_to_wire",
    "message_from_wire",
    "policy_to_wire",
    "policy_from_wire",
    "ft_to_wire",
    "ft_from_wire",
]

#: Major version negotiated in HELLO/WELCOME; a hub refuses mismatches.
PROTOCOL_VERSION = 1

#: Upper bound on one frame (type byte + body); a longer length prefix
#: means a corrupt or hostile stream and kills the connection.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameType(IntEnum):
    """The 1-byte wire tag of each frame kind."""

    HELLO = 0x01      # worker -> hub: registration / join request
    WELCOME = 0x02    # hub -> worker: node id + full run configuration
    MSG = 0x03        # both ways: one DLB protocol message
    PING = 0x04       # hub -> worker: liveness probe
    PONG = 0x05       # worker -> hub: liveness answer
    LEAVE = 0x06      # worker -> hub: planned departure + residual ranges
    MEMBER = 0x07     # hub -> workers: epoch-fenced join announcement
    DEATH = 0x08      # hub -> workers: peer crashed or departed
    GRANT = 0x09      # hub -> worker: orphaned ranges granted
    STAT = 0x0A       # worker -> hub: run-statistics records
    CTRL = 0x0B       # hub -> worker: orchestration (leave-now, die)
    BYE = 0x0C        # hub -> worker: run over, disconnect cleanly
    ERR = 0x0D        # either way: protocol violation, then close
    # Strictly opt-in (see docs/WIRE_PROTOCOL.md): a worker sends TRACE
    # only when the hub's WELCOME carried ``run.trace_events`` — a peer
    # that predates it never receives one, so no version bump.
    TRACE = 0x0E      # worker -> hub: trace-buffer handoff at teardown


class FrameError(ValueError):
    """A frame could not be encoded or decoded."""


def encode_frame(ftype: FrameType, body: Optional[dict] = None) -> bytes:
    """One wire frame: length prefix, type byte, canonical JSON body."""
    payload = b"" if body is None else json.dumps(
        body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if 1 + len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body too large ({len(payload)} bytes)")
    return _LEN.pack(1 + len(payload)) + bytes([ftype]) + payload


def decode_frame(data: bytes) -> tuple[FrameType, dict, int]:
    """Decode one frame from the head of ``data``.

    Returns ``(type, body, bytes_consumed)``; raises
    :class:`FrameError` on truncation or garbage (use
    :class:`FrameDecoder` for incremental stream parsing).
    """
    if len(data) < _LEN.size + 1:
        raise FrameError("truncated frame")
    (length,) = _LEN.unpack_from(data)
    if length < 1 or length > MAX_FRAME_BYTES:
        raise FrameError(f"bad frame length {length}")
    if len(data) < _LEN.size + length:
        raise FrameError("truncated frame body")
    try:
        ftype = FrameType(data[_LEN.size])
    except ValueError as exc:
        raise FrameError(f"unknown frame type 0x{data[_LEN.size]:02x}") \
            from exc
    raw = data[_LEN.size + 1:_LEN.size + length]
    if not raw:
        return ftype, {}, _LEN.size + length
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"bad frame body: {exc}") from exc
    if not isinstance(body, dict):
        raise FrameError("frame body must be a JSON object")
    return ftype, body, _LEN.size + length


class FrameDecoder:
    """Incremental stream decoder: feed byte chunks, iterate frames.

    TCP gives no record boundaries; the decoder buffers partial frames
    across :meth:`feed` calls and yields each complete
    ``(FrameType, body)`` pair exactly once, in stream order.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> Iterator[tuple[FrameType, dict]]:
        self._buf.extend(chunk)
        while True:
            if len(self._buf) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buf)
            if length < 1 or length > MAX_FRAME_BYTES:
                raise FrameError(f"bad frame length {length}")
            if len(self._buf) < _LEN.size + length:
                return
            ftype, body, used = decode_frame(bytes(self._buf))
            del self._buf[:used]
            yield ftype, body


# ---------------------------------------------------------------------------
# Message <-> MSG-frame body.
# ---------------------------------------------------------------------------
#: Message-specific body fields beyond the src/dst/epoch routing header.
_MSG_FIELDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "interrupt": (InterruptMsg, ("group",)),
    "profile": (ProfileMsg, ("group", "remaining_work", "remaining_count",
                             "rate")),
    "instruction": (InstructionMsg, ("group", "outgoing", "incoming",
                                     "retire", "done", "active",
                                     "select_scheme", "select_group_size",
                                     "incoming_srcs", "grant")),
    "work": (WorkMsg, ("ranges", "count", "data_bytes")),
    "control": (ControlMsg, ("kind", "payload")),
    "data": (DataMsg, ("label", "data_bytes")),
}


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, TransferOrder):
        return [value.src, value.dst, value.work]
    if isinstance(value, (tuple, list)):
        return [_to_jsonable(v) for v in value]
    return value


def message_to_wire(msg: Message) -> dict:
    """Flatten a protocol message into a JSON-clean MSG-frame body."""
    tag = msg.tag.value
    if tag not in _MSG_FIELDS:  # pragma: no cover - defensive
        raise FrameError(f"cannot encode message tag {tag!r}")
    body: dict[str, Any] = {"tag": tag, "src": msg.src, "dst": msg.dst,
                            "epoch": msg.epoch}
    for name in _MSG_FIELDS[tag][1]:
        body[name] = _to_jsonable(getattr(msg, name))
    return body


def _pairs(value: Any) -> tuple[tuple[int, int], ...]:
    return tuple((int(s), int(e)) for s, e in value or ())


def message_from_wire(body: dict) -> Message:
    """Rebuild the frozen message dataclass from a MSG-frame body."""
    tag = body.get("tag")
    if tag not in _MSG_FIELDS:
        raise FrameError(f"unknown message tag {tag!r}")
    cls, names = _MSG_FIELDS[tag]
    fields: dict[str, Any] = {name: body[name] for name in names
                              if name in body}
    if tag == "instruction":
        fields["outgoing"] = tuple(
            TransferOrder(int(s), int(d), float(w))
            for s, d, w in fields.get("outgoing", ()))
        fields["active"] = tuple(int(n) for n in fields.get("active", ()))
        fields["incoming_srcs"] = tuple(
            int(n) for n in fields.get("incoming_srcs", ()))
        fields["grant"] = _pairs(fields.get("grant"))
    elif tag == "work":
        fields["ranges"] = _pairs(fields.get("ranges"))
    elif tag == "control" and isinstance(fields.get("payload"), list):
        # Range payloads (leave/grant bookkeeping) round-trip as tuples.
        fields["payload"] = _pairs(fields["payload"])
    return cls(src=int(body["src"]), dst=int(body["dst"]),
               epoch=int(body["epoch"]), **fields)


# ---------------------------------------------------------------------------
# Config dataclasses <-> WELCOME-frame fragments.
# ---------------------------------------------------------------------------
def policy_to_wire(policy: "DlbPolicy") -> dict:
    from dataclasses import asdict
    return asdict(policy)


def policy_from_wire(body: dict) -> "DlbPolicy":
    from dataclasses import fields as dc_fields

    from ..core.policy import DlbPolicy
    known = {f.name for f in dc_fields(DlbPolicy)}
    return DlbPolicy(**{k: v for k, v in body.items() if k in known})


def ft_to_wire(ft: "FaultToleranceConfig") -> dict:
    from dataclasses import asdict
    return asdict(ft)


def ft_from_wire(body: dict) -> "FaultToleranceConfig":
    from dataclasses import fields as dc_fields

    from ..runtime.options import FaultToleranceConfig
    known = {f.name for f in dc_fields(FaultToleranceConfig)}
    return FaultToleranceConfig(
        **{k: v for k, v in body.items() if k in known})
