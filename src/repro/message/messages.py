"""Typed messages exchanged by the DLB protocols (substrate S4).

Message kinds mirror the paper's Figure 1 timeline: a computation-
finished processor sends INTERRUPT, the others answer with PROFILE, a
load balancer answers with INSTRUCTION (centralized only), WORK carries
migrated iterations plus their data rows, and CONTROL carries
termination / configuration notices.  DATA messages are the initial
scatter / final gather payloads.

Sizes are modeled, not real: each class reports the number of bytes its
wire representation would occupy, which is what the network layer charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, ClassVar, Optional

from ..simulation.mailbox import EpochBoundFilter

__all__ = [
    "Tag",
    "Message",
    "InterruptMsg",
    "ProfileMsg",
    "InstructionMsg",
    "WorkMsg",
    "ControlMsg",
    "DataMsg",
    "TransferOrder",
    "EpochStamper",
    "is_stale",
    "stale_predicate",
]

#: Fixed per-message header (task ids, tag, epoch) in bytes.
HEADER_BYTES = 16


class Tag(Enum):
    """Wire-level message tags."""

    INTERRUPT = "interrupt"
    PROFILE = "profile"
    INSTRUCTION = "instruction"
    WORK = "work"
    CONTROL = "control"
    DATA = "data"


@dataclass(frozen=True)
class Message:
    """Base class: routing plus the modeled wire size."""

    #: Wire tag, a per-class constant (hot-path: read millions of times
    #: per run, so a plain class attribute rather than a property).
    tag: ClassVar[Optional[Tag]] = None

    src: int
    dst: int
    epoch: int = 0

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class InterruptMsg(Message):
    """The receiver-initiated synchronization interrupt (§3.1)."""

    group: int = 0

    tag: ClassVar[Tag] = Tag.INTERRUPT


@dataclass(frozen=True)
class ProfileMsg(Message):
    """Performance profile: work left and observed rate (§3.2).

    ``rate`` is base-processor-seconds of work completed per busy second
    since the last synchronization point — for a uniform loop this is the
    paper's "iterations per second" metric scaled by the iteration time.
    """

    group: int = 0
    remaining_work: float = 0.0
    remaining_count: int = 0
    rate: float = 0.0

    tag: ClassVar[Tag] = Tag.PROFILE

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + 48  # group + two floats + count + rate window


@dataclass(frozen=True)
class TransferOrder:
    """One work transfer in a redistribution plan: src sends dst work."""

    src: int
    dst: int
    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("transfer work must be non-negative")


@dataclass(frozen=True)
class InstructionMsg(Message):
    """Load-balancer instructions (centralized schemes, §3.5).

    Carries the node's outgoing transfer orders, the number of incoming
    transfers to expect, whether the node should retire, and the new
    active set of its group (so everyone addresses future interrupts
    consistently).  ``done`` signals global/group termination.
    """

    group: int = 0
    outgoing: tuple[TransferOrder, ...] = ()
    incoming: int = 0
    retire: bool = False
    done: bool = False
    active: tuple[int, ...] = ()
    # Customized selection (§4.3): the master announces the committed
    # scheme and group size with the first-synchronization instruction.
    select_scheme: str = ""
    select_group_size: int = 0
    # Fault tolerance (docs/FAULT_MODEL.md): the senders behind
    # ``incoming`` (so a timed receive knows whom to nudge), and orphaned
    # iteration ranges the balancer grants this node from the reclaim pool.
    incoming_srcs: tuple[int, ...] = ()
    grant: tuple[tuple[int, int], ...] = ()

    tag: ClassVar[Tag] = Tag.INSTRUCTION

    @property
    def nbytes(self) -> int:
        return (HEADER_BYTES + 32 + 16 * len(self.outgoing)
                + 4 * len(self.active) + 4 * len(self.incoming_srcs)
                + 16 * len(self.grant))


@dataclass(frozen=True)
class WorkMsg(Message):
    """Migrated iterations plus the data rows they operate on (§3.3)."""

    ranges: tuple[tuple[int, int], ...] = ()
    count: int = 0
    data_bytes: int = 0

    tag: ClassVar[Tag] = Tag.WORK

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + 16 * len(self.ranges) + self.data_bytes


@dataclass(frozen=True)
class ControlMsg(Message):
    """Out-of-band control notices (configuration, termination)."""

    kind: str = "done"
    payload: Any = None

    tag: ClassVar[Tag] = Tag.CONTROL

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + 16


class EpochStamper:
    """Stamps ``src``/``epoch`` onto outgoing messages in one place.

    Every protocol participant used to repeat ``src=self.me,
    epoch=self.epoch`` at each construction site; a stamper is bound
    once to the sender's identity and an epoch accessor, so call sites
    name only what varies (message class, destination, payload)::

        stamp = EpochStamper(me, lambda: self.epoch)
        msg = stamp(InterruptMsg, dst=peer, group=gid)
    """

    def __init__(self, src: int, epoch_fn: Callable[[], int]) -> None:
        self.src = src
        self._epoch_fn = epoch_fn

    def __call__(self, cls: type, dst: int, *,
                 epoch: Optional[int] = None, **fields) -> "Message":
        """Build ``cls`` with ``src`` and the current epoch filled in.

        Pass ``epoch=`` explicitly only for out-of-epoch traffic (e.g.
        answering a resend request for an older epoch).
        """
        stamped = self._epoch_fn() if epoch is None else epoch
        return cls(src=self.src, dst=dst, epoch=stamped, **fields)


def is_stale(msg: "Message", epoch: int, *, inclusive: bool = False) -> bool:
    """Whether ``msg`` belongs to a superseded epoch.

    The single point of truth for epoch-staleness: INTERRUPT traffic is
    consumed through the end of the current epoch (``inclusive=True``)
    while every other tag is stale only strictly before it.
    """
    return msg.epoch <= epoch if inclusive else msg.epoch < epoch


def stale_predicate(epoch: int, tags: Optional[tuple["Tag", ...]] = None,
                    *, inclusive: bool = False
                    ) -> Callable[["Message"], bool]:
    """A mailbox predicate selecting stale messages of the given tags.

    Returns an :class:`~repro.simulation.mailbox.EpochBoundFilter`, so a
    slotted mailbox drain drops whole superseded-epoch buckets by key
    instead of testing items one by one; it remains a plain callable for
    every other mailbox implementation.
    """
    return EpochBoundFilter(epoch, tags, inclusive=inclusive)


@dataclass(frozen=True)
class DataMsg(Message):
    """Bulk array data: initial scatter / final gather segments."""

    label: str = "scatter"
    data_bytes: int = 0

    tag: ClassVar[Tag] = Tag.DATA

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + self.data_bytes
