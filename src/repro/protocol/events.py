"""Events fed *into* the protocol state machines.

An event is a fact about the outside world — a message arrived, a
compute slice ended, a timer expired, a failure detector spoke.  The
protocol machines (:class:`~repro.protocol.worker.WorkerProtocol`,
:class:`~repro.protocol.balancer.BalancerProtocol`) consume events and
emit :mod:`~repro.protocol.commands`; they never learn *how* the event
was produced (simulated clock, real thread, or a hand-written test
script).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..message.messages import Message

__all__ = [
    "ProtocolEvent",
    "Start",
    "ComputeDone",
    "MessageReceived",
    "TimerFired",
    "PeerDead",
    "PeerJoined",
    "PeerLeft",
    "LeaveRequested",
]


@dataclass(frozen=True)
class ProtocolEvent:
    """Base class for everything a backend may feed a protocol object."""


@dataclass(frozen=True)
class Start(ProtocolEvent):
    """The backend has scheduled this participant; begin the loop."""


@dataclass(frozen=True)
class ComputeDone(ProtocolEvent):
    """A compute slice ended.

    ``status`` is ``"finished"`` when the whole current assignment was
    executed, or ``"interrupted"`` when the backend stopped at an
    iteration boundary because a synchronization interrupt arrived.
    """

    status: str

    def __post_init__(self) -> None:
        if self.status not in ("finished", "interrupted"):
            raise ValueError(f"bad compute status {self.status!r}")


@dataclass(frozen=True)
class MessageReceived(ProtocolEvent):
    """A protocol message was delivered (already matched to the last
    ``AwaitMessage`` command's tag filter by the backend)."""

    msg: Message


@dataclass(frozen=True)
class TimerFired(ProtocolEvent):
    """The timeout armed by the last ``AwaitMessage`` expired with no
    matching message (fault-tolerant mode only)."""


@dataclass(frozen=True)
class PeerDead(ProtocolEvent):
    """An external failure detector declared ``peer`` dead."""

    peer: int


@dataclass(frozen=True)
class PeerJoined(ProtocolEvent):
    """Elastic membership: a registrar admitted ``peer`` to ``group``.

    Backends that support mid-run joins (the socket backend) feed this
    at an epoch fence, so every member of the group admits the joiner
    at the same synchronization point and the replicated redistribution
    plans stay consistent (see docs/WIRE_PROTOCOL.md, join handshake).
    """

    peer: int
    group: int = 0


@dataclass(frozen=True)
class PeerLeft(ProtocolEvent):
    """Elastic membership: ``peer`` departed on purpose.

    Unlike :class:`PeerDead` this is a *planned* departure — the peer
    handed its residual work back before disconnecting — but the
    surviving protocol transitions are the same: drop the peer from the
    active set and stop waiting on it.
    """

    peer: int


@dataclass(frozen=True)
class LeaveRequested(ProtocolEvent):
    """The backend asks this worker to retire voluntarily, now.

    Only legal between compute iterations (the planned-departure
    analogue of a synchronization interrupt): the worker takes all
    remaining work off its assignment, ships it to the membership
    registrar in a ``leave`` control message, and terminates.
    """
