"""Protocol-level errors (backend-agnostic).

The simulation backend maps these onto its own exception taxonomy
(:mod:`repro.simulation.errors`); a real-time backend lets them
propagate out of the worker thread.
"""

from __future__ import annotations

__all__ = ["ProtocolError", "ProtocolRetryExhausted"]


class ProtocolError(RuntimeError):
    """A protocol state machine was driven with an impossible event."""


class ProtocolRetryExhausted(ProtocolError):
    """Every retry toward a peer assumed reliable went unanswered."""

    def __init__(self, me: int, peer: int, what: str, attempts: int) -> None:
        super().__init__(
            f"node {me}: no {what} from {peer} after {attempts} attempts")
        self.me = me
        self.peer = peer
        self.what = what
        self.attempts = attempts
