"""Commands emitted *by* the protocol state machines.

A command is an instruction to the execution backend — send this
message, run the current assignment, wait for these tags, charge this
much local computation.  Commands carry no callbacks and no backend
handles: they are plain data, so a test can assert on them directly
and any backend (discrete-event simulator, real threads, a future
async or multiprocess engine) can interpret them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.redistribution import RedistributionPlan
from ..message.messages import Message, Tag

__all__ = [
    "Command",
    "Send",
    "StartCompute",
    "AwaitMessage",
    "Charge",
    "DeclareDead",
    "RecordSync",
    "Emit",
    "Done",
]


@dataclass(frozen=True)
class Command:
    """Base class for everything a protocol object may ask a backend."""


@dataclass(frozen=True)
class Send(Command):
    """Transmit ``msg`` over the backend's transport."""

    msg: Message


@dataclass(frozen=True)
class StartCompute(Command):
    """Execute the participant's current assignment.

    The backend runs iterations (simulated time, or a real CPU-burn
    kernel) until the assignment is drained or a synchronization
    interrupt stops it at an iteration boundary, then feeds back a
    :class:`~repro.protocol.events.ComputeDone` event.  The backend is
    responsible for booking executed ranges into the run statistics and
    for reporting the busy time via ``WorkerProtocol.note_busy``.
    """


@dataclass(frozen=True)
class AwaitMessage(Command):
    """Block until a message matching the filters is delivered.

    ``tags`` is the tag whitelist; ``epoch``/``srcs`` further restrict
    when not ``None``.  ``timeout`` (fault-tolerant mode) bounds the
    wait: on expiry the backend feeds a ``TimerFired`` event instead of
    a message.  Exactly one ``AwaitMessage`` is outstanding at a time.
    """

    tags: tuple[Tag, ...]
    epoch: Optional[int] = None
    srcs: Optional[tuple[int, ...]] = None
    timeout: Optional[float] = None


@dataclass(frozen=True)
class Charge(Command):
    """Model ``seconds`` of local computation (e.g. the replicated
    redistribution calculation).  The simulation backend advances the
    virtual clock through the workstation's load model; a real-time
    backend may ignore it — its planning computation costs real time.
    """

    seconds: float


@dataclass(frozen=True)
class DeclareDead(Command):
    """Report ``peer`` to the failure registry (fencing / reclaim)."""

    peer: int


@dataclass(frozen=True)
class RecordSync(Command):
    """Record one synchronization outcome in the run statistics."""

    group: int
    epoch: int
    plan: RedistributionPlan


@dataclass(frozen=True)
class Emit(Command):
    """A structured trace event as a pure protocol output.

    The state machines never read a clock; an ``Emit`` carries only
    logical fields (epoch, reason, transfer counts) and the backend
    timestamps it against its own time domain when — and only when —
    tracing is enabled.  Protocols produce ``Emit`` commands solely
    when their ``emit_trace`` flag is set (default off), so scripted
    tests asserting exact command tuples, and runs without a recorder,
    see byte-identical command streams.

    ``fields`` is a sorted tuple of ``(key, value)`` pairs so the
    command stays hashable/frozen; build it with :func:`emit`.
    """

    name: str
    fields: tuple[tuple[str, object], ...] = ()

    def args(self) -> dict:
        return dict(self.fields)


def emit(name: str, **fields) -> Emit:
    """Build an :class:`Emit` from keyword fields."""
    return Emit(name, tuple(sorted(fields.items())))


@dataclass(frozen=True)
class Done(Command):
    """This participant's protocol has terminated.

    ``reason`` is ``"done"`` (group consensus / balancer DONE),
    ``"retired"`` (this node was retired by a plan), or ``"lone"``
    (a distributed node with no peers left and no work to claim).
    """

    reason: str
