"""The worker side of the DLB protocol as a pure state machine.

:class:`WorkerProtocol` is the paper's Figure-3 slave loop — compute,
interrupt, profile, redistribute — with every timing and transport
concern stripped out.  It owns the *protocol state* of one processor:

* epoch counter and active-peer set,
* the iteration :class:`~repro.runtime.assignment.Assignment`,
* the §3.2 performance window (work and busy seconds since the last
  synchronization) and the derived rate,
* the resend caches that answer a peer's recovery requests.

It exposes two API tiers over that single state:

1. **An event pump** — :meth:`on_event` consumes
   :mod:`~repro.protocol.events` and returns
   :mod:`~repro.protocol.commands`.  This is how the real-time
   :class:`~repro.backend.thread.ThreadBackend` and the scripted
   ``tests/protocol`` suite drive a worker: no simulator, no threads,
   no clock — just events in, commands out.
2. **Fine-grained transitions** — :meth:`build_profile`,
   :meth:`plan_outgoing`, :meth:`local_plan`, the window accounting —
   used by the discrete-event adapter
   (:class:`~repro.runtime.node.NodeRuntime`), which needs to
   interleave protocol steps with simulated time at a finer grain
   (mid-compute steals, co-located balancer preemption, the §4.3
   mid-run strategy switch).  Both tiers mutate the same state, so the
   protocol semantics cannot fork between backends.

The fault-tolerance hardening (timed receives, exponential backoff,
declaring silent peers dead — docs/FAULT_MODEL.md) is expressed here
as ordinary transitions: a ``TimerFired`` event produces resend
commands and eventually a ``DeclareDead`` command, on any backend.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Sequence

from ..apps.workload import WorkTable
from ..core.policy import DlbPolicy
from ..core.redistribution import (
    MovementCostFn,
    PlannerFn,
    RedistributionPlan,
    SyncProfile,
    plan_redistribution,
)
from ..message.messages import (
    ControlMsg,
    EpochStamper,
    InstructionMsg,
    InterruptMsg,
    Message,
    ProfileMsg,
    Tag,
    TransferOrder,
    WorkMsg,
    is_stale,
)
from ..runtime.assignment import Assignment
from ..runtime.options import FaultToleranceConfig
from . import commands as C
from . import events as E
from .errors import ProtocolError, ProtocolRetryExhausted

__all__ = ["WorkerProtocol"]

Range = tuple[int, int]


class WorkerProtocol:
    """Pure protocol state machine for one DLB worker."""

    def __init__(self, me: int, members: Sequence[int], *,
                 group: int = 0,
                 centralized: bool,
                 lb_host: int = 0,
                 policy: DlbPolicy,
                 table: WorkTable,
                 mean_iteration_time: float,
                 dc_bytes: int = 0,
                 movement_cost_fn: Optional[MovementCostFn] = None,
                 planner: Optional[PlannerFn] = None,
                 ft: Optional[FaultToleranceConfig] = None,
                 profile_window_reset: bool = True,
                 initial_rate: float = 1.0,
                 assignment: Optional[Assignment] = None,
                 is_dlb: bool = True,
                 initial_epoch: int = 0) -> None:
        self.me = me
        self.members = tuple(members)
        self.group = group
        self.centralized = centralized
        self.lb_host = lb_host
        self.policy = policy
        self.table = table
        self.mean_iteration_time = mean_iteration_time
        self.dc_bytes = dc_bytes
        self.movement_cost_fn = movement_cost_fn
        #: Pluggable redistribution calculation: ``None`` uses the
        #: paper's eq.-3 proportional planner; the diffusion strategy
        #: installs a topology-restricted planner here.  Must be a
        #: deterministic pure function — the distributed schemes rely on
        #: replicated planners agreeing without communication.
        self.planner = planner
        self.ft = ft or FaultToleranceConfig()
        self.profile_window_reset = profile_window_reset
        self.is_dlb = is_dlb
        #: When set (post-construction, by a backend that holds an
        #: enabled trace recorder), the pump interleaves :class:`C.Emit`
        #: commands — pure data, no clock access — into its outputs.
        #: Default off, so scripted tests and untraced runs see the
        #: exact historical command tuples.
        self.emit_trace = False

        # -- protocol state (shared by both API tiers) ---------------------
        # ``initial_epoch`` is non-zero only for an elastic joiner, which
        # enters the group at its current synchronization epoch.
        self.epoch = initial_epoch
        self.active: set[int] = set(self.members)
        self.assignment: Assignment = assignment or Assignment()
        self.more_work = True
        self.win_work = 0.0
        self.win_busy = 0.0
        self.rate = initial_rate  # optimistic prior before measurements
        self.stamp = EpochStamper(me, lambda: self.epoch)
        self._profile_cache: dict[int, ProfileMsg] = {}
        self._work_cache: dict[tuple[int, int], WorkMsg] = {}

        # -- event-pump bookkeeping ----------------------------------------
        self._phase = "init"
        self._attempt = 0
        self._sent_profile: Optional[ProfileMsg] = None
        self._profiles: dict[int, SyncProfile] = {}
        self._missing: set[int] = set()
        self._rounds: dict[int, int] = {}
        self._pending_srcs: list[int] = []
        self._pending_count = 0
        self._retiring = False

    # ------------------------------------------------------------------
    # Fine-grained transitions (used by the DES adapter and internally).
    # ------------------------------------------------------------------
    @property
    def ft_enabled(self) -> bool:
        return self.ft.enabled

    def note_busy(self, seconds: float) -> None:
        """Book busy wall time into the current performance window."""
        self.win_busy += seconds

    def note_work(self, work: float) -> None:
        """Book completed work into the current performance window."""
        self.win_work += work

    def measured_rate(self) -> float:
        """The §3.2 performance metric over the current window."""
        if self.win_busy > 0 and self.win_work > 0:
            self.rate = self.win_work / self.win_busy
        return self.rate

    def reset_window(self) -> None:
        if self.profile_window_reset:
            self.win_work = 0.0
            self.win_busy = 0.0

    def advance_epoch(self) -> None:
        self.epoch += 1
        self.reset_window()

    def declare_peer_dead(self, peer: int) -> None:
        self.active.discard(peer)

    def admit_peer(self, peer: int) -> None:
        """Elastic membership: accept ``peer`` into members and active.

        Called at an epoch fence (see :class:`~repro.protocol.events.
        PeerJoined`), so the next interrupt/profile exchange addresses
        the joiner like any other member.
        """
        if peer not in self.members:
            self.members = tuple(sorted((*self.members, peer)))
        self.active.add(peer)

    # -- profiles ----------------------------------------------------------
    def build_profile(self, group: Optional[int] = None) -> ProfileMsg:
        """This node's profile for the current epoch (addressed to self;
        re-address with ``dataclasses.replace`` per recipient)."""
        return ProfileMsg(
            src=self.me, dst=self.me, epoch=self.epoch,
            group=self.group if group is None else group,
            remaining_work=self.assignment.work(self.table),
            remaining_count=self.assignment.count,
            rate=self.measured_rate())

    def sync_profile(self, profile: ProfileMsg) -> SyncProfile:
        """The planner-facing view of a profile message."""
        return SyncProfile(
            node=profile.src, remaining_work=profile.remaining_work,
            remaining_count=profile.remaining_count, rate=profile.rate)

    def cache_profile(self, profile: ProfileMsg) -> None:
        """Remember the profile so resend requests can be answered; only
        the last two epochs are retained."""
        if not self.ft_enabled:
            return
        self._profile_cache[profile.epoch] = profile
        for old in [e for e in self._profile_cache if e < profile.epoch - 1]:
            del self._profile_cache[old]

    def profile_reply(self, epoch: int, dst: int) -> Optional[ProfileMsg]:
        """Answer a ``resend-profile`` request from the cache.

        Prefers the exact epoch; otherwise the latest cached profile is
        returned as liveness evidence (the prober must not fence us just
        because we are stuck in an older epoch).  ``None`` when nothing
        has been cached yet.
        """
        if epoch in self._profile_cache:
            return replace(self._profile_cache[epoch], dst=dst)
        if self._profile_cache:
            latest = self._profile_cache[max(self._profile_cache)]
            return replace(latest, dst=dst)
        return None

    # -- work movement -----------------------------------------------------
    def take_outgoing(self, order: TransferOrder, *, retire: bool,
                      ship_all: bool = False
                      ) -> tuple[tuple[Range, ...], int]:
        """Take the iteration ranges realizing one outgoing order.

        Mutates the assignment.  With ``ship_all`` (a retiring node's
        final order) everything left is shipped; otherwise roughly
        ``order.work`` is taken from the tail, and a staying node always
        keeps at least one iteration.
        """
        if ship_all:
            ranges = self.assignment.take_all()
            count = sum(e - s for s, e in ranges)
        else:
            ranges, count = self.assignment.take_tail_work(
                self.table, order.work, keep_one=not retire)
        return tuple(ranges), count

    def plan_outgoing(self, orders: Iterable[TransferOrder], retire: bool
                      ) -> list[tuple[TransferOrder, tuple[Range, ...], int]]:
        """Take the iteration ranges realizing each outgoing order.

        A retiring node ships everything left with its final order.
        """
        out = []
        orders = list(orders)
        for idx, order in enumerate(orders):
            ranges, count = self.take_outgoing(
                order, retire=retire,
                ship_all=retire and idx == len(orders) - 1)
            out.append((order, ranges, count))
        return out

    def make_work_msg(self, dst: int, epoch: int,
                      ranges: Sequence[Range], count: int) -> WorkMsg:
        return WorkMsg(src=self.me, dst=dst, epoch=epoch,
                       ranges=tuple(ranges), count=count,
                       data_bytes=count * self.dc_bytes)

    def cache_work(self, msg: WorkMsg) -> None:
        """Remember a shipped parcel for ``resend-work`` recovery; only
        the last two epochs are retained."""
        if not self.ft_enabled:
            return
        self._work_cache[(msg.dst, msg.epoch)] = msg
        for key in [k for k in self._work_cache if k[1] < msg.epoch - 1]:
            del self._work_cache[key]

    def work_reply(self, dst: int, epoch: int) -> Optional[WorkMsg]:
        return self._work_cache.get((dst, epoch))

    def local_plan(self, profiles: Iterable[SyncProfile]
                   ) -> RedistributionPlan:
        """The replicated (deterministic) redistribution calculation."""
        ordered = sorted(profiles, key=lambda p: p.node)
        if self.planner is not None:
            return self.planner(ordered)
        return plan_redistribution(
            ordered, self.policy, self.mean_iteration_time,
            self.movement_cost_fn)

    def _trace(self, name: str, **fields) -> list[C.Command]:
        """One gated :class:`C.Emit` (empty list when tracing is off)."""
        if not self.emit_trace:
            return []
        return [C.emit(name, node=self.me, **fields)]

    # ------------------------------------------------------------------
    # Event pump (used by real-time backends and scripted tests).
    # ------------------------------------------------------------------
    def on_event(self, event: E.ProtocolEvent) -> tuple[C.Command, ...]:
        """Feed one event; returns the commands the backend must run."""
        if isinstance(event, E.Start):
            return self._pump_start()
        if isinstance(event, E.ComputeDone):
            return self._pump_compute_done(event.status)
        if isinstance(event, E.MessageReceived):
            return self._pump_message(event.msg)
        if isinstance(event, E.TimerFired):
            return self._pump_timeout()
        if isinstance(event, E.PeerDead):
            return self._pump_peer_dead(event.peer)
        if isinstance(event, E.PeerJoined):
            return self._pump_peer_joined(event.peer)
        if isinstance(event, E.PeerLeft):
            # A planned departure needs the same surviving transitions
            # as a death: drop the peer, stop waiting on it.
            return self._pump_peer_dead(event.peer)
        if isinstance(event, E.LeaveRequested):
            return self._pump_leave()
        raise ProtocolError(f"unknown event {event!r}")

    @property
    def phase(self) -> str:
        """The pump's current phase (observable for tests/debugging)."""
        return self._phase

    def _pump_start(self) -> tuple[C.Command, ...]:
        if self._phase != "init":
            raise ProtocolError(f"Start while in phase {self._phase!r}")
        self._phase = "computing"
        return (C.StartCompute(),)

    def _pump_compute_done(self, status: str) -> tuple[C.Command, ...]:
        if self._phase != "computing":
            raise ProtocolError(
                f"ComputeDone while in phase {self._phase!r}")
        if not self.is_dlb:
            # Static baseline: compute the initial block, then stop.
            self.more_work = False
            self._phase = "done"
            return (C.Done("done"),)
        cmds: list[C.Command] = []
        others = sorted(self.active - {self.me})
        if status == "finished" and not others and not self.centralized:
            # Lone distributed node: nothing to exchange with.
            self.more_work = False
            self._phase = "done"
            return (C.Done("lone"),)
        if status == "finished" and others:
            # Receiver-initiated sync: interrupt the group (§3.1).
            cmds += [C.Send(self.stamp(InterruptMsg, dst=o, group=self.group))
                     for o in others]
        cmds += self._enter_sync()
        return tuple(cmds)

    def _enter_sync(self) -> list[C.Command]:
        cmds0 = self._trace(
            "sync", epoch=self.epoch, group=self.group,
            mode="centralized" if self.centralized else "distributed")
        profile = self.build_profile()
        self.cache_profile(profile)
        if self.centralized:
            self._phase = "await_instruction"
            self._attempt = 0
            self._sent_profile = replace(profile, dst=self.lb_host)
            return cmds0 + [C.Send(self._sent_profile),
                            self._await_instruction()]
        others = sorted(self.active - {self.me})
        self._profiles = {self.me: self.sync_profile(profile)}
        self._missing = set(others)
        self._rounds = {p: 0 for p in others}
        cmds = cmds0 + [C.Send(replace(profile, dst=o)) for o in others]
        if not self._missing:
            return cmds + self._do_plan()
        self._phase = "gather"
        return cmds + [self._await_profiles()]

    # -- awaits ------------------------------------------------------------
    def _await_instruction(self) -> C.AwaitMessage:
        timeout = (self.ft.timeout_for(self._attempt)
                   if self.ft_enabled else None)
        return C.AwaitMessage(tags=(Tag.INSTRUCTION,), epoch=self.epoch,
                              timeout=timeout)

    def _await_profiles(self) -> C.AwaitMessage:
        srcs = tuple(sorted(self._missing))
        if not self.ft_enabled:
            return C.AwaitMessage(tags=(Tag.PROFILE,), epoch=self.epoch,
                                  srcs=srcs)
        # Hardened: accept stale profiles too (liveness evidence), so no
        # epoch filter; staleness is judged on receipt.
        timeout = self.ft.timeout_for(
            min(self._rounds[p] for p in self._missing))
        return C.AwaitMessage(tags=(Tag.PROFILE,), srcs=srcs,
                              timeout=timeout)

    def _await_work(self) -> C.AwaitMessage:
        src = self._pending_srcs[0]
        return C.AwaitMessage(tags=(Tag.WORK, Tag.CONTROL), epoch=self.epoch,
                              srcs=(src,),
                              timeout=self.ft.timeout_for(self._attempt))

    # -- message handling --------------------------------------------------
    def _pump_message(self, msg: Message) -> tuple[C.Command, ...]:
        if msg.tag is Tag.INTERRUPT:
            # Interrupt timing is the backend's concern (it stops the
            # compute slice); a queued interrupt reaching the pump is
            # simply stale traffic.
            return self._rearm()
        if self._phase == "await_instruction":
            return self._on_instruction(msg)
        if self._phase == "gather":
            return self._on_gather_profile(msg)
        if self._phase == "recv_work":
            return self._on_work(msg)
        if self._phase == "done":
            return ()
        raise ProtocolError(
            f"message {msg!r} while in phase {self._phase!r}")

    def _rearm(self) -> tuple[C.Command, ...]:
        if self._phase == "await_instruction":
            return (self._await_instruction(),)
        if self._phase == "gather":
            return (self._await_profiles(),)
        if self._phase == "recv_work":
            return (self._await_work(),)
        return ()

    def _on_instruction(self, msg: Message) -> tuple[C.Command, ...]:
        if not isinstance(msg, InstructionMsg) or msg.epoch != self.epoch:
            return self._rearm()
        if msg.select_scheme:
            raise ProtocolError(
                "customized selection needs the session-aware adapter "
                "(strategy CUSTOM is simulation-only)")
        cmds: list[C.Command] = []
        if msg.grant:
            self.assignment.add(msg.grant)
            cmds += self._trace(
                "grant", epoch=self.epoch,
                iterations=sum(e - s for s, e in msg.grant))
        if msg.done:
            self.more_work = False
            self._phase = "done"
            return tuple(cmds + [C.Done("done")])
        srcs = msg.incoming_srcs if self.ft_enabled else None
        return tuple(cmds + self._apply_outcome(
            msg.outgoing, srcs, msg.incoming, msg.active, msg.retire))

    def _on_gather_profile(self, msg: Message) -> tuple[C.Command, ...]:
        if isinstance(msg, ProfileMsg) and msg.src in self._missing:
            if msg.epoch == self.epoch:
                self._profiles[msg.src] = self.sync_profile(msg)
                self._missing.discard(msg.src)
                self._rounds.pop(msg.src, None)
            elif is_stale(msg, self.epoch):
                # Stale duplicate: liveness evidence only.
                self._rounds[msg.src] = 0
        if not self._missing:
            return tuple(self._do_plan())
        return (self._await_profiles(),)

    def _on_work(self, msg: Message) -> tuple[C.Command, ...]:
        if not self.ft_enabled:
            if isinstance(msg, WorkMsg) and msg.epoch == self.epoch:
                if msg.ranges:
                    self.assignment.add(msg.ranges)
                self._pending_count -= 1
                if self._pending_count <= 0:
                    return tuple(self._finish_sync())
            return (C.AwaitMessage(tags=(Tag.WORK,), epoch=self.epoch),)
        src = self._pending_srcs[0]
        consumed = False
        if msg.src == src and msg.epoch == self.epoch:
            if isinstance(msg, WorkMsg):
                if msg.ranges:
                    self.assignment.add(msg.ranges)
                consumed = True
            elif isinstance(msg, ControlMsg) and msg.kind == "no-work":
                # The sender never owed us this parcel (plan divergence).
                consumed = True
        if not consumed:
            return (self._await_work(),)
        self._pending_srcs.pop(0)
        self._attempt = 0
        if self._pending_srcs:
            return (self._await_work(),)
        return tuple(self._finish_sync())

    # -- timeouts / failure detection --------------------------------------
    def _pump_timeout(self) -> tuple[C.Command, ...]:
        if not self.ft_enabled:
            raise ProtocolError("TimerFired with fault tolerance disabled")
        if self._phase == "await_instruction":
            if self._attempt >= self.ft.max_retries:
                # The master is reliable by assumption: exhaustion here
                # is unrecoverable rather than a declaration.
                raise ProtocolRetryExhausted(
                    self.me, self.lb_host, "instruction", self._attempt + 1)
            self._attempt += 1
            assert self._sent_profile is not None
            return (C.Send(self._sent_profile), self._await_instruction())
        if self._phase == "gather":
            return self._gather_timeout()
        if self._phase == "recv_work":
            return self._work_timeout()
        raise ProtocolError(
            f"TimerFired while in phase {self._phase!r}")

    def _gather_timeout(self) -> tuple[C.Command, ...]:
        cmds: list[C.Command] = []
        overdue = [p for p in sorted(self._missing)
                   if self._rounds[p] >= self.ft.max_retries]
        for peer in overdue:
            self.declare_peer_dead(peer)
            self._missing.discard(peer)
            self._rounds.pop(peer, None)
            cmds.append(C.DeclareDead(peer))
        if not self._missing:
            return tuple(cmds + self._do_plan())
        for peer in sorted(self._missing):
            self._rounds[peer] += 1
            cmds.append(C.Send(self.stamp(ControlMsg, dst=peer,
                                          kind="resend-profile")))
        return tuple(cmds + [self._await_profiles()])

    def _work_timeout(self) -> tuple[C.Command, ...]:
        src = self._pending_srcs[0]
        if self._attempt >= self.ft.max_retries:
            self.declare_peer_dead(src)
            self._pending_srcs.pop(0)
            self._attempt = 0
            cmds: list[C.Command] = [C.DeclareDead(src)]
            if self._pending_srcs:
                return tuple(cmds + [self._await_work()])
            return tuple(cmds + self._finish_sync())
        self._attempt += 1
        return (C.Send(self.stamp(ControlMsg, dst=src, kind="resend-work")),
                self._await_work())

    def _pump_peer_dead(self, peer: int) -> tuple[C.Command, ...]:
        self.declare_peer_dead(peer)
        if self._phase == "gather" and peer in self._missing:
            self._missing.discard(peer)
            self._rounds.pop(peer, None)
            if not self._missing:
                return tuple(self._do_plan())
            return (self._await_profiles(),)
        if self._phase == "recv_work" and self._pending_srcs \
                and self._pending_srcs[0] == peer:
            self._pending_srcs.pop(0)
            self._attempt = 0
            if self._pending_srcs:
                return (self._await_work(),)
            return tuple(self._finish_sync())
        return ()

    # -- elastic membership -------------------------------------------------
    def _pump_peer_joined(self, peer: int) -> tuple[C.Command, ...]:
        """Admit a joiner announced by the membership registrar.

        Backends deliver this at an epoch fence, normally while the
        worker is computing (no commands needed — the next sync simply
        includes the joiner); mid-wait delivery just re-arms the wait.
        """
        self.admit_peer(peer)
        if self._phase == "computing":
            return ()
        return self._rearm()

    def _pump_leave(self) -> tuple[C.Command, ...]:
        """Planned departure: hand all remaining work to the registrar.

        The backend honors a leave request only at an iteration
        boundary of the compute slice, so the in-flight iteration is
        finished (never duplicated) and everything still assigned ships
        back in one ``leave`` control message for re-granting.
        """
        if self._phase != "computing":
            raise ProtocolError(
                f"LeaveRequested while in phase {self._phase!r} "
                "(planned departures happen at iteration boundaries)")
        ranges = tuple(self.assignment.take_all())
        self.more_work = False
        self._phase = "done"
        return tuple(
            self._trace("leave", epoch=self.epoch,
                        iterations=sum(e - s for s, e in ranges))
            + [C.Send(self.stamp(ControlMsg, dst=self.lb_host,
                                 kind="leave", payload=ranges)),
               C.Done("left")])

    # -- plan application --------------------------------------------------
    def _do_plan(self) -> list[C.Command]:
        plan = self.local_plan(self._profiles.values())
        cmds: list[C.Command] = [C.Charge(self.policy.delta_seconds),
                                 C.RecordSync(self.group, self.epoch, plan)]
        cmds += self._trace(
            "decision", epoch=self.epoch, group=self.group,
            reason=plan.reason,
            moved=plan.work_to_move if plan.move else 0.0,
            n_transfers=len(plan.transfers))
        if plan.done:
            self.more_work = False
            self._phase = "done"
            return cmds + [C.Done("done")]
        retire_me = self.me in plan.retire
        srcs = tuple(t.src for t in plan.incoming(self.me))
        return cmds + self._apply_outcome(
            plan.outgoing(self.me), srcs if self.ft_enabled else None,
            len(srcs), plan.active, retire_me)

    def _apply_outcome(self, outgoing: Sequence[TransferOrder],
                       incoming_srcs: Optional[Sequence[int]],
                       incoming_count: int,
                       new_active: Sequence[int],
                       retire: bool) -> list[C.Command]:
        cmds: list[C.Command] = []
        for order, ranges, count in self.plan_outgoing(outgoing, retire):
            msg = self.make_work_msg(order.dst, self.epoch, ranges, count)
            self.cache_work(msg)
            cmds += self._trace("redistribute", epoch=self.epoch,
                                dst=order.dst, iterations=count,
                                work=order.work)
            cmds.append(C.Send(msg))
        # Elastic membership: a plan's active set may name nodes that
        # joined after this worker's construction — admit them before
        # intersecting, so only nodes *removed* by the plan drop out.
        for node in new_active:
            if node not in self.members:
                self.members = tuple(sorted((*self.members, node)))
        self.active = set(new_active) & set(self.members)
        self._retiring = retire
        if self.ft_enabled and incoming_srcs:
            self._pending_srcs = list(incoming_srcs)
            self._attempt = 0
            self._phase = "recv_work"
            return cmds + [self._await_work()]
        if not self.ft_enabled and incoming_count > 0:
            self._pending_count = incoming_count
            self._phase = "recv_work"
            return cmds + [C.AwaitMessage(tags=(Tag.WORK,),
                                          epoch=self.epoch)]
        return cmds + self._finish_sync()

    def _finish_sync(self) -> list[C.Command]:
        if self._retiring:
            self.more_work = False
            self._phase = "done"
            return [C.Done("retired")]
        self.advance_epoch()
        self._phase = "computing"
        return [C.StartCompute()]
