"""The central balancer side of the DLB protocol as a pure state machine.

:class:`BalancerProtocol` owns the master's protocol state — per-group
profile boxes, the ready queue, group epochs and active sets, the
cached-instruction table that recovers lost INSTRUCTIONs, and the probe
clocks of the pull-based failure detector.  It has no clock, transport,
or process model: the discrete-event adapter
(:class:`~repro.runtime.balancer.CentralBalancer`) drives the
fine-grained transitions and keeps the simulation-only concerns
(stealing CPU from the co-located compute slave, the §4.3 customized
selection); the real-time backend pumps :meth:`on_event`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

from ..core.policy import DlbPolicy
from ..core.redistribution import (
    MovementCostFn,
    PlannerFn,
    RedistributionPlan,
    SyncProfile,
    plan_redistribution,
)
from ..message.messages import (
    InstructionMsg,
    Message,
    ProfileMsg,
    Tag,
)
from ..runtime.options import FaultToleranceConfig
from . import commands as C
from . import events as E
from .errors import ProtocolError

__all__ = ["BalancerProtocol"]

Range = tuple[int, int]


class BalancerProtocol:
    """Pure protocol state machine for the central load balancer."""

    def __init__(self, host: int, groups: Sequence[Sequence[int]], *,
                 policy: DlbPolicy,
                 mean_iteration_time: float,
                 movement_cost_fn: Optional[MovementCostFn] = None,
                 planner: Optional[PlannerFn] = None,
                 ft: Optional[FaultToleranceConfig] = None) -> None:
        self.host = host
        self.groups = [list(members) for members in groups]
        self.group_of = {node: g for g, members in enumerate(self.groups)
                         for node in members}
        self.policy = policy
        self.mean_iteration_time = mean_iteration_time
        self.movement_cost_fn = movement_cost_fn
        #: Pluggable redistribution calculation (``None`` = eq. 3); the
        #: diffusion strategy installs its topology-restricted planner.
        self.planner = planner
        self.ft = ft or FaultToleranceConfig()
        #: Same contract as ``WorkerProtocol.emit_trace``: when set, the
        #: pump interleaves :class:`C.Emit` commands into its outputs.
        self.emit_trace = False

        self.pending: dict[int, dict[int, SyncProfile]] = {}
        self.ready: deque[int] = deque()
        self.group_active: dict[int, set[int]] = {
            g: set(members) for g, members in enumerate(self.groups)}
        self.group_epoch: dict[int, int] = {
            g: 0 for g in range(len(self.groups))}
        self.groups_done: set[int] = set()
        # Lost-INSTRUCTION recovery and per-node probe state (unanswered
        # liveness probes since the node's last sign of life).
        self.last_instruction: dict[int, InstructionMsg] = {}
        self.probe_rounds: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Fine-grained transitions (used by the DES adapter and internally).
    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return len(self.groups_done) >= len(self.groups)

    def absorb(self, msg: ProfileMsg, group: Optional[int] = None) -> None:
        """File a profile into its group's box; mark the group ready when
        every active member has reported."""
        gid = self.group_of.get(msg.src, msg.group) if group is None \
            else group
        box = self.pending.setdefault(gid, {})
        box[msg.src] = SyncProfile(
            node=msg.src, remaining_work=msg.remaining_work,
            remaining_count=msg.remaining_count, rate=msg.rate)
        if (gid not in self.groups_done
                and set(box) >= self.group_active.get(gid, set())
                and gid not in self.ready):
            self.ready.append(gid)

    def note_alive(self, node: int) -> None:
        """Any message from ``node`` resets its probe clock."""
        self.probe_rounds.pop(node, None)

    def admit(self, node: int, gid: int = 0) -> int:
        """Elastic membership: accept ``node`` into group ``gid``.

        Returns the group's current epoch — the joiner's starting
        epoch.  The joiner counts toward the group's profile quorum
        from now on; with no work assigned it synchronizes immediately
        (a joiner *is* the paper's "processor with no work left"), so
        the next plan reshapes the iteration range onto the new set.
        """
        if not 0 <= gid < len(self.groups):
            raise ProtocolError(f"cannot admit {node} to group {gid}")
        if gid in self.groups_done:
            raise ProtocolError(
                f"cannot admit {node}: group {gid} already finished")
        if node not in self.group_of:
            self.groups[gid].append(node)
            self.group_of[node] = gid
        self.group_active.setdefault(gid, set()).add(node)
        # The quorum grew: a group marked ready on the old active set
        # must wait for the joiner's profile too.
        if gid in self.ready and \
                not set(self.pending.get(gid, {})) >= self.group_active[gid]:
            self.ready.remove(gid)
        return self.group_epoch.setdefault(gid, 0)

    def cached_instruction(self, node: int, epoch: Optional[int] = None
                           ) -> Optional[InstructionMsg]:
        """The last instruction sent to ``node`` (lost-INSTRUCTION
        recovery); filtered to ``epoch`` when given."""
        cached = self.last_instruction.get(node)
        if cached is not None and (epoch is None or cached.epoch == epoch):
            return cached
        return None

    def take_ready(self) -> Optional[int]:
        """Pop the next group whose profile set is complete."""
        return self.ready.popleft() if self.ready else None

    def group_profiles(self, gid: int) -> list[SyncProfile]:
        """Remove and return a ready group's profiles, sorted by node."""
        return sorted(self.pending.pop(gid, {}).values(),
                      key=lambda p: p.node)

    def plan(self, profiles: Iterable[SyncProfile]) -> RedistributionPlan:
        ordered = sorted(profiles, key=lambda p: p.node)
        if self.planner is not None:
            return self.planner(ordered)
        return plan_redistribution(
            ordered, self.policy, self.mean_iteration_time,
            self.movement_cost_fn)

    def build_instructions(self, gid: int, plan: RedistributionPlan, *,
                           granted: tuple[Range, ...] = (),
                           grant_dst: Optional[int] = None,
                           selection: Optional[tuple[str, int]] = None,
                           ) -> list[InstructionMsg]:
        """One instruction per active group member realizing ``plan``."""
        epoch = self.group_epoch[gid]
        ft_on = self.ft.enabled
        instructions = []
        for node in sorted(self.group_active[gid]):
            instructions.append(InstructionMsg(
                src=self.host, dst=node, epoch=epoch, group=gid,
                outgoing=plan.outgoing(node),
                incoming=len(plan.incoming(node)),
                incoming_srcs=tuple(t.src for t in plan.incoming(node))
                if ft_on else (),
                grant=granted if node == grant_dst else (),
                retire=node in plan.retire,
                done=plan.done,
                active=plan.active,
                select_scheme=selection[0] if selection else "",
                select_group_size=selection[1] if selection else 0))
        if ft_on:
            for instr in instructions:
                self.last_instruction[instr.dst] = instr
        return instructions

    def complete_group(self, gid: int, plan: RedistributionPlan) -> None:
        """Group bookkeeping after its instructions went out."""
        if plan.done or not plan.active:
            self.groups_done.add(gid)
        else:
            self.group_active[gid] = set(plan.active)
            self.group_epoch[gid] = self.group_epoch[gid] + 1
            for node in plan.active:
                self.probe_rounds.pop(node, None)

    def prune_dead(self, dead: set[int]) -> None:
        """Fold death declarations into membership and readiness."""
        for gid in range(len(self.groups)):
            if gid in self.groups_done:
                continue
            members = self.group_active.get(gid, set())
            alive = members - dead
            if alive != members:
                self.group_active[gid] = alive
            box = self.pending.get(gid, {})
            for node in dead & set(box):
                # A profile from a node since declared dead: its work was
                # reclaimed into the pool, so planning with it would
                # double-count.
                del box[node]
            if not alive:
                self.groups_done.add(gid)
                if gid in self.ready:
                    self.ready.remove(gid)
                continue
            if (set(box) >= alive and gid not in self.ready
                    and gid not in self.groups_done):
                self.ready.append(gid)

    def overdue_members(self, gid: int, alive: set[int]) -> list[int]:
        """Silent members whose probe clock ran out (to be declared)."""
        missing = alive - set(self.pending.get(gid, {}))
        return [node for node in sorted(missing)
                if self.probe_rounds.get(node, 0) >= self.ft.max_retries]

    def reconfigure_after_selection(self, groups: Sequence[Sequence[int]],
                                    globally_active: Sequence[int]) -> None:
        """Rebuild group bookkeeping under the newly selected scheme."""
        self.groups = [list(members) for members in groups]
        self.group_of = {node: g for g, members in enumerate(self.groups)
                         for node in members}
        self.pending.clear()
        self.ready.clear()
        active = set(globally_active)
        self.group_active = {
            g: set(members) & active
            for g, members in enumerate(self.groups)}
        self.group_epoch = {g: 1 for g in range(len(self.groups))}
        self.groups_done = {g for g, mem in self.group_active.items()
                            if not mem}
        self.probe_rounds = {}

    # ------------------------------------------------------------------
    # Event pump (used by real-time backends and scripted tests).
    # ------------------------------------------------------------------
    def on_event(self, event: E.ProtocolEvent) -> tuple[C.Command, ...]:
        """Feed one event; returns the commands the backend must run."""
        if isinstance(event, E.Start):
            if self.all_done:
                return (C.Done("done"),)
            return (C.AwaitMessage(tags=(Tag.PROFILE,)),)
        if isinstance(event, E.MessageReceived):
            return self._pump_message(event.msg)
        if isinstance(event, E.PeerDead):
            self.prune_dead({event.peer})
            return self._serve_ready()
        if isinstance(event, E.PeerLeft):
            # Planned departure: same pruning as a death — the departed
            # node's residual work is re-granted by the backend, not
            # planned over.
            self.prune_dead({event.peer})
            return self._serve_ready()
        if isinstance(event, E.PeerJoined):
            self.admit(event.peer, event.group)
            return self._serve_ready()
        raise ProtocolError(f"balancer cannot handle {event!r}")

    def _pump_message(self, msg: Message) -> tuple[C.Command, ...]:
        if not isinstance(msg, ProfileMsg):
            if self.all_done:
                return (C.Done("done"),)
            return (C.AwaitMessage(tags=(Tag.PROFILE,)),)
        self.note_alive(msg.src)
        gid = self.group_of.get(msg.src, msg.group)
        epoch = self.group_epoch.get(gid, 0)
        if gid in self.groups_done or msg.epoch < epoch:
            # Stale duplicate: the sender never got its instruction.
            cached = self.cached_instruction(msg.src, msg.epoch)
            cmds: tuple[C.Command, ...] = ()
            if cached is not None:
                cmds = (C.Send(cached),)
            if self.all_done:
                return cmds + (C.Done("done"),)
            return cmds + (C.AwaitMessage(tags=(Tag.PROFILE,)),)
        self.absorb(msg, group=gid)
        return self._serve_ready()

    def _serve_ready(self) -> tuple[C.Command, ...]:
        cmds: list[C.Command] = []
        while self.ready:
            gid = self.ready.popleft()
            epoch = self.group_epoch[gid]
            profiles = self.group_profiles(gid)
            # Distribution calculation plus the context switches in and
            # out of the balancer on the shared master processor.
            cmds.append(C.Charge(self.policy.delta_seconds
                                 + 2.0 * self.policy.context_switch_seconds))
            plan = self.plan(profiles)
            cmds.append(C.RecordSync(gid, epoch, plan))
            if self.emit_trace:
                cmds.append(C.emit(
                    "decision", node=self.host, group=gid, epoch=epoch,
                    reason=plan.reason,
                    moved=plan.work_to_move if plan.move else 0.0,
                    n_transfers=len(plan.transfers)))
            cmds += [C.Send(instr)
                     for instr in self.build_instructions(gid, plan)]
            self.complete_group(gid, plan)
        if self.all_done:
            return tuple(cmds + [C.Done("done")])
        return tuple(cmds + [C.AwaitMessage(tags=(Tag.PROFILE,))])
