"""Backend-agnostic DLB protocol core.

The paper's four strategies (GCDLB / GDDLB / LCDLB / LDDLB, §3) are
pure protocols — profile, interrupt, redistribute.  This package holds
them as event-in / command-out state machines with no knowledge of the
discrete-event simulator, generators, threads, or wall clocks:

* :class:`~repro.protocol.worker.WorkerProtocol` — the Figure-3 slave
  loop (compute, interrupt at iteration boundaries, profile, move
  work), including the fault-tolerance hardening as ordinary
  transitions.
* :class:`~repro.protocol.balancer.BalancerProtocol` — the central
  balancer's group service (GCDLB / LCDLB, §3.5).
* :mod:`~repro.protocol.events` / :mod:`~repro.protocol.commands` —
  the vocabulary between a protocol object and its execution backend.

Execution backends (:mod:`repro.backend`) interpret the commands: the
simulation backend maps them onto the deterministic event heap, the
thread backend onto real threads, queues, and CPU-burn kernels.  New
backends (async, multiprocess, sharded balancers) plug in here without
touching protocol logic.
"""

from .balancer import BalancerProtocol
from .commands import (
    AwaitMessage,
    Charge,
    Command,
    DeclareDead,
    Done,
    Emit,
    RecordSync,
    Send,
    StartCompute,
)
from .errors import ProtocolError, ProtocolRetryExhausted
from .events import (
    ComputeDone,
    LeaveRequested,
    MessageReceived,
    PeerDead,
    PeerJoined,
    PeerLeft,
    ProtocolEvent,
    Start,
    TimerFired,
)
from .worker import WorkerProtocol

__all__ = [
    "AwaitMessage",
    "BalancerProtocol",
    "Charge",
    "Command",
    "ComputeDone",
    "DeclareDead",
    "Done",
    "Emit",
    "LeaveRequested",
    "MessageReceived",
    "PeerDead",
    "PeerJoined",
    "PeerLeft",
    "ProtocolError",
    "ProtocolEvent",
    "ProtocolRetryExhausted",
    "RecordSync",
    "Send",
    "Start",
    "StartCompute",
    "TimerFired",
    "WorkerProtocol",
]
