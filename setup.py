"""Setup shim for environments without PEP 517 build frontends.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works offline (no wheel package needed).
"""
from setuptools import setup

setup()
