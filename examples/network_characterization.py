"""Off-line network characterization (the paper's §6.1 / Figure 4).

Measures the one-to-all, all-to-one and all-to-all communication
patterns on the simulated shared Ethernet bus for 2..16 processors and
fits polynomials with ``numpy.polyfit`` — then shows how the fitted
cost functions feed the strategy model's synchronization terms.

Run with::

    python examples/network_characterization.py
"""

from repro.core.model.costs import strategy_sync_costs
from repro.core.policy import DlbPolicy
from repro.core.strategies import GCDLB, GDDLB
from repro.network import characterize_network


def main() -> None:
    model = characterize_network(proc_counts=range(2, 17))
    print(f"PVM-like transport: latency {model.latency * 1e6:.1f} us, "
          f"bandwidth {model.bandwidth / 1e6:.2f} MB/s\n")

    print(f"{'P':>3s} {'OA(exp)':>10s} {'OA(fit)':>10s} "
          f"{'AO(exp)':>10s} {'AO(fit)':>10s} "
          f"{'AA(exp)':>10s} {'AA(fit)':>10s}   [seconds]")
    for p in range(2, 17):
        cells = []
        for pattern in ("OA", "AO", "AA"):
            fit = model.fits[pattern]
            measured = dict(fit.samples)[p]
            cells += [f"{measured:10.4f}", f"{fit(p):10.4f}"]
        print(f"{p:>3d} " + " ".join(cells))

    print("\nfitted polynomials (numpy.polyval coefficient order):")
    for pattern, fit in model.fits.items():
        coeffs = ", ".join(f"{c:.3e}" for c in fit.coefficients)
        print(f"  {pattern}: [{coeffs}]  rms residual "
              f"{fit.residual_rms() * 1e6:.1f} us")

    print("\nper-synchronization cost the model derives from the fits:")
    policy = DlbPolicy()
    for spec in (GCDLB, GDDLB):
        costs = strategy_sync_costs(spec, model, policy)
        for k in (4, 8, 16):
            print(f"  {spec.name} with {k:2d} processors: "
                  f"sigma = {costs.synchronization(k) * 1e3:7.2f} ms, "
                  f"delta = {costs.calculation() * 1e3:5.2f} ms")


if __name__ == "__main__":
    main()
