"""Quickstart: run one MXM loop under every DLB strategy.

Reproduces in miniature the experiment behind the paper's Figure 5:
matrix multiplication on four workstations with transient external
load, under the static baseline and all four dynamic load balancing
strategies.

Run with::

    python examples/quickstart.py
"""

from repro import ClusterSpec, run_loop
from repro.apps import MxmConfig, mxm_loop


def main() -> None:
    # Four identical workstations; each carries an independent discrete
    # random external load (levels 0..5, redrawn every 5 seconds).
    cluster = ClusterSpec.homogeneous(4, max_load=5, persistence=5.0,
                                      seed=2026)

    # The paper's smallest MXM configuration: Z = X * Y with
    # R x C = 400 x 400 and inner dimension R2 = 400.
    loop = mxm_loop(MxmConfig(r=400, c=400, r2=400), op_seconds=4e-7)

    print(f"loop: {loop.n_iterations} iterations, "
          f"{loop.iteration_time * 1e3:.1f} ms each on the base processor\n")

    results = {}
    for scheme in ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB"):
        stats = run_loop(loop, cluster, scheme)
        results[scheme] = stats.duration
        print(stats.summary())

    base = results["NONE"]
    print("\nnormalized to the static (no DLB) run:")
    for scheme, duration in results.items():
        bar = "#" * int(40 * duration / base)
        print(f"  {scheme:>6s} {duration / base:6.3f} |{bar}")

    best = min((d, s) for s, d in results.items() if s != "NONE")
    print(f"\nbest strategy for this load realization: {best[1]} "
          f"({best[0]:.2f} s vs {base:.2f} s static)")


if __name__ == "__main__":
    main()
