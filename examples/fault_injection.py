"""Fault injection: crash a workstation mid-loop and watch recovery.

The paper assumes a reliable network of workstations; this example
exercises the reproduction's hardened runtime (docs/FAULT_MODEL.md)
instead.  One of four nodes fail-stops at 40% of the run under every
DLB strategy; the survivors detect the death through retry exhaustion,
reclaim the victim's unfinished iteration ranges from the orphan pool,
and finish the loop with every iteration executed exactly once.  A
second pass loses two WORK messages on the wire and recovers them with
resend requests alone.

Run with::

    python examples/fault_injection.py
"""

from repro import ClusterSpec, run_loop
from repro.apps.workload import LoopSpec
from repro.faults import FaultPlan, MessageDropFault
from repro.runtime.options import FaultToleranceConfig, RunOptions

STRATEGIES = ("GCDLB", "GDDLB", "LCDLB", "LDDLB")


def main() -> None:
    # A small loop keeps the demo quick; detection timeouts are scaled
    # to a few iteration times so recovery is visible but not dominant.
    loop = LoopSpec(name="mxm-small", n_iterations=128,
                    iteration_time=0.008, dc_bytes=1600)
    cluster = ClusterSpec.homogeneous(4, max_load=3, persistence=0.5,
                                      seed=2026)
    options = RunOptions(fault_tolerance=FaultToleranceConfig(
        request_timeout=0.08, backoff=2.0, max_retries=4,
        liveness_timeout=0.24))

    print("== scenario 1: node 2 fail-stops at 40% of the run ==")
    for scheme in STRATEGIES:
        baseline = run_loop(loop, cluster, scheme, options=options)
        plan = FaultPlan.single_crash(node=2, time=0.4 * baseline.duration)
        stats = run_loop(loop, cluster, scheme, options=options,
                         fault_plan=plan)
        executed = sum(e - s for ranges in stats.executed_by_node.values()
                       for s, e in ranges)
        assert executed == loop.n_iterations, "coverage broken"
        print(f"  {scheme}: {baseline.duration:.3f}s fault-free -> "
              f"{stats.duration:.3f}s under the crash "
              f"({stats.duration / baseline.duration:.2f}x); "
              f"reclaimed {stats.reclaimed_iterations} iterations, "
              f"{stats.fault_retries} retries, "
              f"declared dead: {list(stats.declared_dead)}")

    print("\n== scenario 2: two WORK messages are lost on the bus ==")
    for scheme in STRATEGIES:
        plan = FaultPlan(
            drops=(MessageDropFault(probability=1.0, max_drops=2,
                                    tag="work"),),
            seed=7)
        stats = run_loop(loop, cluster, scheme, options=options,
                         fault_plan=plan)
        print(f"  {scheme}: {stats.duration:.3f}s; "
              f"dropped={stats.dropped_messages} "
              f"retries={stats.fault_retries} "
              f"declared dead: {list(stats.declared_dead)} "
              f"(drops healed by resend, nobody fenced)")


if __name__ == "__main__":
    main()
