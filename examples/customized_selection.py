"""Customized DLB: the paper's §4.3 hybrid compile/run-time selection.

The loop starts with an equal partition and runs to the first
synchronization point.  The master then feeds the *measured* effective
loads into the §4.2 cost model, ranks all four strategies, and commits
to the winner for the rest of the loop.  This script shows the
selection report and compares the customized run against every fixed
strategy.

Run with::

    python examples/customized_selection.py
"""

from repro import ClusterSpec, run_loop
from repro.apps import MxmConfig, mxm_loop


def main() -> None:
    loop = mxm_loop(MxmConfig(r=400, c=400, r2=400), op_seconds=4e-7)

    for seed in (1, 7, 23):
        cluster = ClusterSpec.homogeneous(4, max_load=5, persistence=5.0,
                                          seed=seed)
        custom = run_loop(loop, cluster, "CUSTOM")
        report = custom.selection_report

        print(f"=== load realization seed {seed}")
        mus = ", ".join(f"P{i}: {mu:.2f}"
                        for i, mu in sorted(
                            report.measured_effective_loads.items()))
        print(f"  measured effective loads at first sync: {mus}")
        print(f"  model ranking: {report.summary()}")

        fixed = {}
        for scheme in ("GCDLB", "GDDLB", "LCDLB", "LDDLB"):
            fixed[scheme] = run_loop(loop, cluster, scheme).duration
        best_fixed = min(fixed, key=fixed.get)
        print(f"  fixed-strategy times: "
              + ", ".join(f"{s}={t:.2f}s" for s, t in fixed.items()))
        print(f"  customized ({custom.selected_scheme}): "
              f"{custom.duration:.2f} s;"
              f" best fixed was {best_fixed} at {fixed[best_fixed]:.2f} s\n")


if __name__ == "__main__":
    main()
