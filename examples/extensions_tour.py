"""Tour of the extensions beyond the paper's four schemes.

* work stealing (Phish, §2.2) vs. the synchronized strategies,
* periodic vs. interrupt-based synchronization,
* group formation for the local schemes under adversarial load,
* an ASCII Gantt chart of who computed when.

Run with::

    python examples/extensions_tour.py
"""

from repro import ClusterSpec, run_loop
from repro.apps import MxmConfig, mxm_loop
from repro.runtime import RunOptions, render_gantt, render_sync_timeline


def main() -> None:
    loop = mxm_loop(MxmConfig(r=240, c=200, r2=200), op_seconds=4e-7)
    cluster = ClusterSpec.homogeneous(4, max_load=5, persistence=5.0,
                                      seed=97)

    print("== work stealing vs synchronized DLB ==")
    for scheme in ("NONE", "WS", "GDDLB"):
        stats = run_loop(loop, cluster, scheme)
        extra = ""
        if scheme == "WS":
            steals = sum(1 for s in stats.syncs if s.reason == "steal")
            extra = f" ({steals} steals)"
        print(f"  {scheme:>6s}: {stats.duration:6.2f}s{extra}")

    print("\n== periodic vs interrupt synchronization ==")
    for label, opts in (
            ("interrupt", RunOptions()),
            ("periodic T=0.5s", RunOptions(sync_mode="periodic",
                                           sync_period=0.5)),
            ("periodic T=4s", RunOptions(sync_mode="periodic",
                                         sync_period=4.0))):
        stats = run_loop(loop, cluster, "GDDLB", options=opts)
        print(f"  {label:>16s}: {stats.duration:6.2f}s "
              f"({stats.n_syncs} syncs)")

    print("\n== group formation under striped load (LDDLB, K=2) ==")
    stripe = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                         load_traces=((5,), (5,), (0,), (0,)))
    for formation in ("block", "interleaved"):
        opts = RunOptions(group_size=2, group_formation=formation)
        stats = run_loop(loop, stripe, "LDDLB", options=opts)
        print(f"  {formation:>12s}: {stats.duration:6.2f}s")

    print("\n== execution timeline (GDDLB under the striped load) ==")
    stations = stripe.build()
    stats = run_loop(loop, stripe, "GDDLB")
    print(render_gantt(stats, loop, stripe.build()))
    print()
    print(render_sync_timeline(stats, limit=6))


if __name__ == "__main__":
    main()
