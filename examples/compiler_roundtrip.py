"""Compiler round trip: annotated sequential code → SPMD + DLB.

The paper's §5 path end to end: an annotated sequential matrix multiply
is compiled — symbolic cost analysis, Figure-3-style transformed
listing, generated loop specs and kernels — then executed in parallel
on the simulated network of workstations, and the result is compared
against the sequential reference bit for bit.

Run with::

    python examples/compiler_roundtrip.py
"""

import numpy as np

from repro import ClusterSpec
from repro.compiler import compile_source

MXM_SOURCE = """
/* dlb: array Z(R, C) distribute(BLOCK, WHOLE) */
/* dlb: array X(R, R2) distribute(BLOCK, WHOLE) */
/* dlb: array Y(R2, C) distribute(WHOLE, WHOLE) */
/* dlb: loadbalance */
/* dlb: name mxm */
for i = 0, R {
    for j = 0, C {
        for k = 0, R2 {
            Z[i][j] += X[i][k] * Y[k][j];
        }
    }
}
"""


def main() -> None:
    program = compile_source(MXM_SOURCE)
    analysis = program.analyses[0]

    print("== compile-time analysis ==")
    print(" ", analysis.describe())
    print(f"  size symbols: {sorted(analysis.size_symbols())}\n")

    print("== transformed SPMD listing (cf. paper Figure 3) ==")
    print(program.transformed_source)
    print()

    sizes = dict(R=48, C=16, R2=12)
    spec = program.loops["mxm"].loop_spec(sizes, op_seconds=1e-5)
    print("== instantiated loop spec ==")
    print(f"  {spec.n_iterations} iterations, "
          f"{spec.iteration_time * 1e3:.2f} ms each, DC={spec.dc_bytes} B\n")

    cluster = ClusterSpec.homogeneous(4, max_load=4, persistence=0.5,
                                      seed=3)
    sequential = program.run_sequential(sizes, seed=1)
    stats, parallel = program.run_parallel(sizes, cluster, "GDDLB", seed=1,
                                           op_seconds=1e-5)

    print("== parallel execution under GDDLB ==")
    print(" ", stats[0].summary())
    match = np.allclose(sequential["Z"], parallel["Z"])
    print(f"  parallel result equals sequential reference: {match}")
    assert match


if __name__ == "__main__":
    main()
