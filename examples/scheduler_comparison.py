"""DLB vs. the task-queue schedulers of the related work (§2.2).

The classic loop schedulers assume a cheap central queue — fine on
shared memory, expensive on a network of workstations where every grab
is a message round trip.  This script runs self-scheduling, chunking,
GSS, factoring, trapezoid and safe self-scheduling with NOW-realistic
access costs against the paper's interrupt-based DLB schemes under the
same external load.

Run with::

    python examples/scheduler_comparison.py
"""

import numpy as np

from repro import ClusterSpec, run_loop
from repro.apps import MxmConfig, mxm_loop
from repro.network import PAPER_LATENCY_S
from repro.schedulers import ALL_POLICIES, run_affinity, run_task_queue


def main() -> None:
    loop = mxm_loop(MxmConfig(r=240, c=200, r2=200), op_seconds=4e-7)
    seeds = range(5)

    def clusters():
        for seed in seeds:
            yield ClusterSpec.homogeneous(4, max_load=5, persistence=5.0,
                                          seed=300 + seed)

    print(f"loop: {loop.n_iterations} iterations x "
          f"{loop.iteration_time * 1e3:.1f} ms; central-queue access cost "
          f"= one PVM round trip ({2 * PAPER_LATENCY_S * 1e3:.1f} ms)\n")

    rows = []
    for policy in ALL_POLICIES():
        times = [run_task_queue(loop, c, policy,
                                access_cost=2 * PAPER_LATENCY_S
                                ).finish_time
                 for c in clusters()]
        rows.append((float(np.mean(times)), f"queue/{policy.name}"))

    times = [run_affinity(loop, c, access_cost=50e-6,
                          steal_cost=2 * PAPER_LATENCY_S).finish_time
             for c in clusters()]
    rows.append((float(np.mean(times)), "queue/affinity"))

    for scheme in ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB"):
        times = [run_loop(loop, c, scheme).duration for c in clusters()]
        rows.append((float(np.mean(times)), f"dlb/{scheme}"))

    rows.sort()
    best = rows[0][0]
    print(f"{'scheduler':<28s} {'mean time':>10s} {'vs best':>8s}")
    for mean, name in rows:
        print(f"{name:<28s} {mean:>9.2f}s {mean / best:>7.2f}x")


if __name__ == "__main__":
    main()
