"""TRFD: a two-loop application with an intervening sequential stage.

TRFD (Perfect Benchmarks) has two computation loop nests separated by a
sequentialized transpose.  Each loop is load balanced independently —
and, as the paper's Table 2 shows, the *best* strategy can differ
between the two loops of the same program.  Loop 2 is triangular and is
made near-uniform with bitonic scheduling.

Run with::

    python examples/trfd_pipeline.py
"""


from repro import ClusterSpec, TrfdConfig, run_application, trfd_application
from repro.apps.trfd import bitonic_pair_costs, loop2_iteration_ops


def main() -> None:
    config = TrfdConfig(n=30)
    app = trfd_application(config, op_seconds=3e-7)

    raw = loop2_iteration_ops(config)
    paired = bitonic_pair_costs(raw)
    print(f"TRFD N={config.n}: array {config.m} x {config.m}")
    print(f"loop 2 raw cost spread:     {raw.min():.0f}..{raw.max():.0f} ops "
          f"(cv {raw.std() / raw.mean():.2f})")
    print(f"loop 2 bitonic cost spread: {paired.min():.0f}..{paired.max():.0f}"
          f" ops (cv {paired.std() / paired.mean():.3f})\n")

    cluster = ClusterSpec.homogeneous(8, max_load=5, persistence=5.0,
                                      seed=11)
    per_loop: dict[str, dict[str, float]] = {}
    for scheme in ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB"):
        stats = run_application(app, cluster, scheme)
        print(stats.summary())
        for ls in stats.loop_stats:
            per_loop.setdefault(ls.loop_name, {})[scheme] = ls.duration
    print()
    for loop_name, times in per_loop.items():
        order = sorted((t, s) for s, t in times.items() if s != "NONE")
        ranked = " < ".join(s for _t, s in order)
        print(f"{loop_name}: best-to-worst {ranked} "
              f"(static: {times['NONE']:.2f} s)")


if __name__ == "__main__":
    main()
